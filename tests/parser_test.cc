// Unit tests for the lexer and the schema/query parsers.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseSchema;

// --------------------------- Lexer ---------------------------

TEST(Lexer, Tokens) {
  StatusOr<std::vector<Token>> tokens =
      Tokenize("{ x | exists y (x in C & y != x.A) }");
  OOCQ_ASSERT_OK(tokens.status());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kLBrace, TokenKind::kIdent, TokenKind::kPipe,
                       TokenKind::kExists, TokenKind::kIdent,
                       TokenKind::kLParen, TokenKind::kIdent, TokenKind::kIn,
                       TokenKind::kIdent, TokenKind::kAmp, TokenKind::kIdent,
                       TokenKind::kNeq, TokenKind::kIdent, TokenKind::kDot,
                       TokenKind::kIdent, TokenKind::kRParen,
                       TokenKind::kRBrace, TokenKind::kEnd}));
}

TEST(Lexer, Keywords) {
  StatusOr<std::vector<Token>> tokens =
      Tokenize("schema class under union in notin exists");
  OOCQ_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kSchema);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kClass);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kUnder);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kUnion);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kIn);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNotin);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kExists);
}

TEST(Lexer, KeywordsAreCaseSensitive) {
  StatusOr<std::vector<Token>> tokens = Tokenize("In NOTIN Exists");
  OOCQ_ASSERT_OK(tokens.status());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kIdent);
  }
}

TEST(Lexer, CommentsSkipped) {
  StatusOr<std::vector<Token>> tokens =
      Tokenize("a // comment\n# another\nb");
  OOCQ_ASSERT_OK(tokens.status());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, End.
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 3);
}

TEST(Lexer, LineAndColumnTracking) {
  StatusOr<std::vector<Token>> tokens = Tokenize("ab\n  cd");
  OOCQ_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(Lexer, PrimeInIdentifier) {
  StatusOr<std::vector<Token>> tokens = Tokenize("x'1");
  OOCQ_ASSERT_OK(tokens.status());
  EXPECT_EQ((*tokens)[0].text, "x'1");
}

TEST(Lexer, BangWithoutEqualsRejected) {
  EXPECT_EQ(Tokenize("x ! y").status().code(), StatusCode::kInvalidArgument);
}

TEST(Lexer, UnexpectedCharacterRejected) {
  Status status = Tokenize("x @ y").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("1:3"), std::string::npos);
}

// --------------------------- Schema parser ---------------------------

TEST(ParseSchema, VehicleRental) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  ClassId discount = schema.FindClass("Discount").value();
  const TypeExpr* rented = schema.FindAttribute(discount, "VehRented");
  ASSERT_NE(rented, nullptr);
  EXPECT_TRUE(rented->is_set());
  EXPECT_EQ(rented->cls(), schema.FindClass("Auto").value());
}

TEST(ParseSchema, MultipleParents) {
  StatusOr<Schema> schema = ParseSchema(R"(
schema M {
  class A { }
  class B { }
  class C under A, B { }
})");
  OOCQ_ASSERT_OK(schema.status());
  ClassId c = schema->FindClass("C").value();
  EXPECT_TRUE(schema->IsSubclassOf(c, schema->FindClass("A").value()));
  EXPECT_TRUE(schema->IsSubclassOf(c, schema->FindClass("B").value()));
}

TEST(ParseSchema, MissingSemicolonRejected) {
  Status status =
      ParseSchema("schema S { class A { X: Int } }").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ParseSchema, MissingKeywordRejected) {
  EXPECT_FALSE(ParseSchema("klass A { }").ok());
}

TEST(ParseSchema, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseSchema("schema S { } extra").ok());
}

TEST(ParseSchema, SetType) {
  StatusOr<Schema> schema = ParseSchema(R"(
schema S {
  class A { }
  class B { Items: {A}; Count: Int; }
})");
  OOCQ_ASSERT_OK(schema.status());
  const TypeExpr* items =
      schema->FindAttribute(schema->FindClass("B").value(), "Items");
  ASSERT_NE(items, nullptr);
  EXPECT_TRUE(items->is_set());
}

// --------------------------- Query parser ---------------------------

class ParseQueryTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);
};

TEST_F(ParseQueryTest, SimpleQuery) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->num_vars(), 2u);
  EXPECT_EQ(query->free_var(), 0u);
  EXPECT_EQ(query->atoms().size(), 3u);
  EXPECT_EQ(query->atoms()[2].kind(), AtomKind::kMembership);
}

TEST_F(ParseQueryTest, SingleAtomWithoutParens) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(schema_, "{ x | x in Auto }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->atoms().size(), 1u);
}

TEST_F(ParseQueryTest, ClassDisjunction) {
  StatusOr<ConjunctiveQuery> query =
      ParseQuery(schema_, "{ x | x in Auto|Truck|Trailer }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->atoms()[0].classes().size(), 3u);
}

TEST_F(ParseQueryTest, AllAtomKinds) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(
      schema_,
      "{ x | exists y exists z (x in Auto & y notin Truck|Trailer & "
      "y in Client & z in Auto & x = z & x != y.VehRented & "
      "x in y.VehRented & z notin y.VehRented) }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->atoms().size(), 8u);
  EXPECT_EQ(query->atoms()[1].kind(), AtomKind::kNonRange);
  EXPECT_EQ(query->atoms()[4].kind(), AtomKind::kEquality);
  EXPECT_EQ(query->atoms()[5].kind(), AtomKind::kInequality);
  EXPECT_EQ(query->atoms()[6].kind(), AtomKind::kMembership);
  EXPECT_EQ(query->atoms()[7].kind(), AtomKind::kNonMembership);
}

TEST_F(ParseQueryTest, UndeclaredVariableRejected) {
  Status status = ParseQuery(schema_, "{ x | x in Auto & y in Auto }").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("undeclared variable 'y'"),
            std::string::npos);
}

TEST_F(ParseQueryTest, UnknownClassRejected) {
  Status status = ParseQuery(schema_, "{ x | x in Bicycle }").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown class 'Bicycle'"),
            std::string::npos);
}

TEST_F(ParseQueryTest, DuplicateQuantifierRejected) {
  Status status =
      ParseQuery(schema_, "{ x | exists x (x in Auto) }").status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ParseQueryTest, MembershipAttributeLhsDesugars) {
  // `x.VehId in y.VehRented` lowers to `_p = x.VehId & _p in y.VehRented`
  // (the paper's §2.2 remark).
  StatusOr<ConjunctiveQuery> query =
      ParseQuery(schema_, "{ x | exists y (x in Auto & y in Client & "
                          "x.VehId in y.VehRented) }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->num_vars(), 3u);  // x, y, _p0... fresh element.
  bool found_equality = false;
  bool found_membership = false;
  for (const Atom& atom : query->atoms()) {
    if (atom.kind() == AtomKind::kEquality &&
        (atom.lhs() == Term::Attr(0, "VehId") ||
         atom.rhs() == Term::Attr(0, "VehId"))) {
      found_equality = true;
    }
    if (atom.kind() == AtomKind::kMembership) found_membership = true;
  }
  EXPECT_TRUE(found_equality);
  EXPECT_TRUE(found_membership);
}

TEST_F(ParseQueryTest, MissingOperatorRejected) {
  EXPECT_FALSE(ParseQuery(schema_, "{ x | x Auto }").ok());
}

TEST_F(ParseQueryTest, UnbalancedParensRejected) {
  EXPECT_FALSE(ParseQuery(schema_, "{ x | (x in Auto }").ok());
}

TEST_F(ParseQueryTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseQuery(schema_, "{ x | x in Auto } stuff").ok());
}

TEST_F(ParseQueryTest, AttributeTermsInEquality) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(
      schema_,
      "{ x | exists y (x in Auto & y in Auto & x.VehId = y.VehId) }");
  OOCQ_ASSERT_OK(query.status());
  const Atom& eq = query->atoms()[2];
  EXPECT_EQ(eq.kind(), AtomKind::kEquality);
  EXPECT_TRUE(eq.lhs().is_attribute());
  EXPECT_TRUE(eq.rhs().is_attribute());
}

TEST(ParseUnionQueryTest, TwoDisjuncts) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  StatusOr<UnionQuery> query = ParseUnionQuery(
      schema, "{ x | x in Auto } union { y | y in Truck }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->disjuncts.size(), 2u);
}

TEST(ParseUnionQueryTest, SingleDisjunct) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  StatusOr<UnionQuery> query = ParseUnionQuery(schema, "{ x | x in Auto }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(query->disjuncts.size(), 1u);
}

TEST(ParseUnionQueryTest, DanglingUnionRejected) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  EXPECT_FALSE(ParseUnionQuery(schema, "{ x | x in Auto } union").ok());
}

}  // namespace
}  // namespace oocq
