// Exhaustive micro-universe verification of Thm 3.1 (whose proof the
// extended abstract omits): over a tiny schema we enumerate
//   * every terminal conjunctive query from a bounded family (≤2
//     variables, atoms drawn from the full applicable pool), and
//   * every legal state with ≤2 objects per terminal class and all
//     attribute configurations (including nulls),
// and assert that the containment algorithm's verdict equals *semantic*
// containment over the enumerated states, in both directions. For this
// bounded family the enumerated states include every adversarial
// configuration the theorem quantifies over (augmentations need at most
// two same-class objects; membership subsets range over all subsets of
// the C extent), so agreement here is a genuine completeness check, not
// just a soundness spot-check.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/containment.h"
#include "core/satisfiability.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseSchema;

class ExhaustiveSemantics : public ::testing::Test {
 protected:
  ExhaustiveSemantics()
      : schema_(MustParseSchema(R"(
schema Micro {
  class C { }
  class P { A: C; S: {C}; }
})")) {
    c_ = schema_.FindClass("C").value();
    p_ = schema_.FindClass("P").value();
    BuildQueries();
    BuildStates();
  }

  // ---- query enumeration ------------------------------------------
  void AddQueriesFor(const std::vector<ClassId>& var_classes) {
    ConjunctiveQuery base;
    for (size_t i = 0; i < var_classes.size(); ++i) {
      VarId v = base.AddVariable(std::string(1, static_cast<char>('x' + i)));
      base.AddAtom(Atom::Range(v, {var_classes[i]}));
    }

    // The pool of applicable non-range atoms over all ordered pairs.
    std::vector<Atom> pool;
    for (VarId a = 0; a < var_classes.size(); ++a) {
      for (VarId b = 0; b < var_classes.size(); ++b) {
        if (a == b) continue;
        if (a < b && var_classes[a] == var_classes[b]) {
          pool.push_back(Atom::Equality(Term::Var(a), Term::Var(b)));
          pool.push_back(Atom::Inequality(Term::Var(a), Term::Var(b)));
        }
        if (var_classes[a] == c_ && var_classes[b] == p_) {
          pool.push_back(Atom::Equality(Term::Var(a), Term::Attr(b, "A")));
          pool.push_back(Atom::Membership(a, b, "S"));
          pool.push_back(Atom::NonMembership(a, b, "S"));
        }
      }
    }

    // All subsets of the pool of size <= 2 (plus the empty one).
    queries_.push_back(base);
    for (size_t i = 0; i < pool.size(); ++i) {
      ConjunctiveQuery one = base;
      one.AddAtom(pool[i]);
      queries_.push_back(one);
      for (size_t j = i + 1; j < pool.size(); ++j) {
        ConjunctiveQuery two = base;
        two.AddAtom(pool[i]);
        two.AddAtom(pool[j]);
        queries_.push_back(two);
      }
    }
  }

  void BuildQueries() {
    for (ClassId x_cls : {c_, p_}) {
      AddQueriesFor({x_cls});
      for (ClassId y_cls : {c_, p_}) {
        AddQueriesFor({x_cls, y_cls});
      }
    }
    // Three-variable families (triple inequalities, shared witnesses,
    // membership + non-membership interplay).
    AddQueriesFor({c_, c_, c_});
    AddQueriesFor({c_, c_, p_});
    AddQueriesFor({c_, p_, p_});
    for (const ConjunctiveQuery& q : queries_) {
      ASSERT_TRUE(CheckWellFormed(schema_, q).ok())
          << QueryToString(schema_, q);
    }
  }

  // ---- state enumeration -------------------------------------------
  void BuildStates() {
    // Three C objects cover triple-inequality witnesses; two P objects
    // cover all two-P-variable configurations.
    for (int nc = 0; nc <= 3; ++nc) {
      for (int np = 0; np <= 2; ++np) {
        // Per P object: A-slot (null or one of the C objects) and S-slot
        // (null or any subset of the C objects).
        int a_choices = 1 + nc;
        int s_choices = 1 + (1 << nc);
        int per_p = a_choices * s_choices;
        int total = 1;
        for (int k = 0; k < np; ++k) total *= per_p;
        for (int config = 0; config < total; ++config) {
          State state(&schema_);
          std::vector<Oid> cs;
          for (int i = 0; i < nc; ++i) cs.push_back(*state.AddObject(c_));
          int rest = config;
          for (int k = 0; k < np; ++k) {
            Oid p = *state.AddObject(p_);
            int local = rest % per_p;
            rest /= per_p;
            int a_pick = local % a_choices;
            int s_pick = local / a_choices;
            if (a_pick > 0) {
              ASSERT_TRUE(
                  state.SetAttribute(p, "A", Value::Ref(cs[a_pick - 1])).ok());
            }
            if (s_pick > 0) {
              std::vector<Oid> members;
              int mask = s_pick - 1;
              for (int i = 0; i < nc; ++i) {
                if (mask & (1 << i)) members.push_back(cs[i]);
              }
              ASSERT_TRUE(
                  state.SetAttribute(p, "S", Value::Set(std::move(members)))
                      .ok());
            }
          }
          ASSERT_TRUE(state.Validate().ok());
          states_.push_back(std::move(state));
        }
      }
    }
  }

  Schema schema_;
  ClassId c_, p_;
  std::vector<ConjunctiveQuery> queries_;
  std::vector<State> states_;
};

TEST_F(ExhaustiveSemantics, UniverseIsNontrivial) {
  EXPECT_GT(queries_.size(), 100u);
  EXPECT_GT(states_.size(), 1000u);
}

TEST_F(ExhaustiveSemantics, SatisfiabilityMatchesEnumeratedStates) {
  // A query is satisfiable iff some enumerated state answers it — exact
  // in this universe (the canonical witness uses at most 2 objects per
  // class for these queries).
  for (const ConjunctiveQuery& q : queries_) {
    bool algorithmic = CheckSatisfiable(schema_, q).satisfiable;
    bool semantic = false;
    for (const State& s : states_) {
      if (!Evaluate(s, q)->empty()) {
        semantic = true;
        break;
      }
    }
    EXPECT_EQ(algorithmic, semantic) << QueryToString(schema_, q);
  }
}

TEST_F(ExhaustiveSemantics, ContainmentMatchesEnumeratedStates) {
  // Precompute all answer sets.
  std::vector<std::vector<std::vector<Oid>>> answers(queries_.size());
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    answers[qi].reserve(states_.size());
    for (const State& s : states_) {
      answers[qi].push_back(*Evaluate(s, queries_[qi]));
    }
  }

  int checked = 0, contained_count = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    for (size_t j = 0; j < queries_.size(); ++j) {
      StatusOr<bool> algorithmic = Contained(schema_, queries_[i], queries_[j]);
      ASSERT_TRUE(algorithmic.ok()) << algorithmic.status().ToString();
      bool semantic = true;
      for (size_t si = 0; si < states_.size() && semantic; ++si) {
        semantic = std::includes(answers[j][si].begin(), answers[j][si].end(),
                                 answers[i][si].begin(), answers[i][si].end());
      }
      EXPECT_EQ(*algorithmic, semantic)
          << "Q1 = " << QueryToString(schema_, queries_[i])
          << "\nQ2 = " << QueryToString(schema_, queries_[j]);
      ++checked;
      if (*algorithmic) ++contained_count;
    }
  }
  // Sanity: the family is rich enough to exercise both outcomes heavily.
  EXPECT_GT(contained_count, checked / 20);
  EXPECT_LT(contained_count, checked);
}

// ---------------------------------------------------------------------
// A micro-universe with TWO set attributes, exercising the Thm 3.1
// membership-subset pool across distinct set terms exhaustively.
// ---------------------------------------------------------------------

class ExhaustiveTwoSets : public ::testing::Test {
 protected:
  ExhaustiveTwoSets()
      : schema_(MustParseSchema(R"(
schema Micro3 {
  class C { }
  class P { S: {C}; T: {C}; }
})")) {
    c_ = schema_.FindClass("C").value();
    p_ = schema_.FindClass("P").value();
    BuildQueries();
    BuildStates();
  }

  void AddQueriesFor(const std::vector<ClassId>& var_classes) {
    ConjunctiveQuery base;
    for (size_t i = 0; i < var_classes.size(); ++i) {
      VarId v = base.AddVariable(std::string(1, static_cast<char>('x' + i)));
      base.AddAtom(Atom::Range(v, {var_classes[i]}));
    }
    std::vector<Atom> pool;
    for (VarId a = 0; a < var_classes.size(); ++a) {
      for (VarId b = 0; b < var_classes.size(); ++b) {
        if (a == b) continue;
        if (a < b && var_classes[a] == var_classes[b]) {
          pool.push_back(Atom::Equality(Term::Var(a), Term::Var(b)));
          pool.push_back(Atom::Inequality(Term::Var(a), Term::Var(b)));
        }
        if (var_classes[a] == c_ && var_classes[b] == p_) {
          pool.push_back(Atom::Membership(a, b, "S"));
          pool.push_back(Atom::NonMembership(a, b, "S"));
          pool.push_back(Atom::Membership(a, b, "T"));
          pool.push_back(Atom::NonMembership(a, b, "T"));
        }
      }
    }
    queries_.push_back(base);
    for (size_t i = 0; i < pool.size(); ++i) {
      ConjunctiveQuery one = base;
      one.AddAtom(pool[i]);
      queries_.push_back(one);
      for (size_t j = i + 1; j < pool.size(); ++j) {
        ConjunctiveQuery two = base;
        two.AddAtom(pool[i]);
        two.AddAtom(pool[j]);
        if (CheckWellFormed(schema_, two).ok()) {
          queries_.push_back(std::move(two));
        }
      }
    }
  }

  void BuildQueries() {
    AddQueriesFor({c_, p_});
    AddQueriesFor({c_, c_, p_});
  }

  void BuildStates() {
    // <= 2 C objects, <= 1 P object; each set slot independently null or
    // any subset of the C objects.
    for (int nc = 0; nc <= 2; ++nc) {
      for (int np = 0; np <= 1; ++np) {
        int slot_choices = 1 + (1 << nc);
        int total = np == 0 ? 1 : slot_choices * slot_choices;
        for (int config = 0; config < total; ++config) {
          State state(&schema_);
          std::vector<Oid> cs;
          for (int i = 0; i < nc; ++i) cs.push_back(*state.AddObject(c_));
          if (np == 1) {
            Oid p = *state.AddObject(p_);
            int s_pick = config % slot_choices;
            int t_pick = config / slot_choices;
            for (const auto& [attr, pick] :
                 {std::make_pair("S", s_pick), std::make_pair("T", t_pick)}) {
              if (pick == 0) continue;
              std::vector<Oid> members;
              int mask = pick - 1;
              for (int i = 0; i < nc; ++i) {
                if (mask & (1 << i)) members.push_back(cs[i]);
              }
              ASSERT_TRUE(
                  state.SetAttribute(p, attr, Value::Set(std::move(members)))
                      .ok());
            }
          }
          ASSERT_TRUE(state.Validate().ok());
          states_.push_back(std::move(state));
        }
      }
    }
  }

  Schema schema_;
  ClassId c_, p_;
  std::vector<ConjunctiveQuery> queries_;
  std::vector<State> states_;
};

TEST_F(ExhaustiveTwoSets, ContainmentAcrossTwoSetTermsMatchesSemantics) {
  std::vector<std::vector<std::vector<Oid>>> answers(queries_.size());
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    for (const State& s : states_) {
      answers[qi].push_back(*Evaluate(s, queries_[qi]));
    }
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    for (size_t j = 0; j < queries_.size(); ++j) {
      StatusOr<bool> algorithmic = Contained(schema_, queries_[i], queries_[j]);
      ASSERT_TRUE(algorithmic.ok()) << algorithmic.status().ToString();
      bool semantic = true;
      for (size_t si = 0; si < states_.size() && semantic; ++si) {
        semantic = std::includes(answers[j][si].begin(), answers[j][si].end(),
                                 answers[i][si].begin(), answers[i][si].end());
      }
      EXPECT_EQ(*algorithmic, semantic)
          << "Q1 = " << QueryToString(schema_, queries_[i])
          << "\nQ2 = " << QueryToString(schema_, queries_[j]);
    }
  }
}

// ---------------------------------------------------------------------
// A second micro-universe for the constants extension: P.N : Int, with
// the literals 1 and 2. Every state interns both literals, so the
// enumerated states cover every adversarial configuration for queries
// over this family.
// ---------------------------------------------------------------------

class ExhaustiveConstants : public ::testing::Test {
 protected:
  ExhaustiveConstants()
      : schema_(MustParseSchema(R"(
schema Micro2 {
  class P { N: Int; }
})")) {
    p_ = schema_.FindClass("P").value();
    BuildQueries();
    BuildStates();
  }

  void AddQueriesFor(const std::vector<ClassId>& var_classes) {
    ConjunctiveQuery base;
    for (size_t i = 0; i < var_classes.size(); ++i) {
      VarId v = base.AddVariable(std::string(1, static_cast<char>('x' + i)));
      base.AddAtom(Atom::Range(v, {var_classes[i]}));
    }
    std::vector<Atom> pool;
    for (VarId a = 0; a < var_classes.size(); ++a) {
      if (var_classes[a] == kIntClassId) {
        pool.push_back(Atom::Constant(a, int64_t{1}));
        pool.push_back(Atom::Constant(a, int64_t{2}));
      }
      for (VarId b = 0; b < var_classes.size(); ++b) {
        if (a == b) continue;
        if (a < b && var_classes[a] == var_classes[b]) {
          pool.push_back(Atom::Equality(Term::Var(a), Term::Var(b)));
          pool.push_back(Atom::Inequality(Term::Var(a), Term::Var(b)));
        }
        if (var_classes[a] == kIntClassId && var_classes[b] == p_) {
          pool.push_back(Atom::Equality(Term::Var(a), Term::Attr(b, "N")));
        }
      }
    }
    queries_.push_back(base);
    for (size_t i = 0; i < pool.size(); ++i) {
      ConjunctiveQuery one = base;
      one.AddAtom(pool[i]);
      queries_.push_back(one);
      for (size_t j = i + 1; j < pool.size(); ++j) {
        ConjunctiveQuery two = base;
        two.AddAtom(pool[i]);
        two.AddAtom(pool[j]);
        queries_.push_back(two);
      }
    }
  }

  void BuildQueries() {
    AddQueriesFor({p_});
    AddQueriesFor({kIntClassId});
    AddQueriesFor({p_, kIntClassId});
    AddQueriesFor({kIntClassId, p_});
    AddQueriesFor({kIntClassId, kIntClassId});
    AddQueriesFor({p_, p_});
    AddQueriesFor({kIntClassId, p_, p_});
  }

  void BuildStates() {
    // Every subset of the literal pool {1, 2, 7} may be interned (under
    // active-domain semantics the Int extent is exactly what the state
    // interns — a state without the literal 1 refutes, e.g.,
    // { x | x in P } ⊆ { x | ∃y (x in P & y in Int & y = 1) }; the
    // third value 7 witnesses "some int different from both constants").
    // Each P object's N slot is null or one of the interned ints.
    const int64_t kPool[] = {1, 2, 7};
    for (int subset = 0; subset < 8; ++subset) {
      std::vector<int64_t> interned;
      for (int i = 0; i < 3; ++i) {
        if (subset & (1 << i)) interned.push_back(kPool[i]);
      }
      for (int np = 0; np <= 2; ++np) {
        int per_p = 1 + static_cast<int>(interned.size());
        int total = 1;
        for (int k = 0; k < np; ++k) total *= per_p;
        for (int config = 0; config < total; ++config) {
          State state(&schema_);
          std::vector<Oid> ints;
          for (int64_t value : interned) {
            ints.push_back(state.InternInt(value));
          }
          int rest = config;
          for (int k = 0; k < np; ++k) {
            Oid p = *state.AddObject(p_);
            int pick = rest % per_p;
            rest /= per_p;
            if (pick > 0) {
              ASSERT_TRUE(
                  state.SetAttribute(p, "N", Value::Ref(ints[pick - 1])).ok());
            }
          }
          ASSERT_TRUE(state.Validate().ok());
          states_.push_back(std::move(state));
        }
      }
    }
  }

  Schema schema_;
  ClassId p_;
  std::vector<ConjunctiveQuery> queries_;
  std::vector<State> states_;
};

TEST_F(ExhaustiveConstants, ContainmentWithConstantsMatchesSemantics) {
  std::vector<std::vector<std::vector<Oid>>> answers(queries_.size());
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    for (const State& s : states_) {
      answers[qi].push_back(*Evaluate(s, queries_[qi]));
    }
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    for (size_t j = 0; j < queries_.size(); ++j) {
      StatusOr<bool> algorithmic = Contained(schema_, queries_[i], queries_[j]);
      ASSERT_TRUE(algorithmic.ok()) << algorithmic.status().ToString();
      bool semantic = true;
      for (size_t si = 0; si < states_.size() && semantic; ++si) {
        semantic = std::includes(answers[j][si].begin(), answers[j][si].end(),
                                 answers[i][si].begin(), answers[i][si].end());
      }
      EXPECT_EQ(*algorithmic, semantic)
          << "Q1 = " << QueryToString(schema_, queries_[i])
          << "\nQ2 = " << QueryToString(schema_, queries_[j]);
    }
  }
}

TEST_F(ExhaustiveConstants, SatisfiabilityWithConstantsMatchesSemantics) {
  for (const ConjunctiveQuery& q : queries_) {
    bool algorithmic = CheckSatisfiable(schema_, q).satisfiable;
    bool semantic = false;
    for (const State& s : states_) {
      if (!Evaluate(s, q)->empty()) {
        semantic = true;
        break;
      }
    }
    EXPECT_EQ(algorithmic, semantic) << QueryToString(schema_, q);
  }
}

}  // namespace
}  // namespace oocq
