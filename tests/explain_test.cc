// Tests for the containment explanation facility: the verdict always
// matches Contained(), and the narrative carries the load-bearing parts.

#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/containment.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class ExplainTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Exp {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");

  ContainmentExplanation Explain(const std::string& q1,
                                 const std::string& q2) {
    StatusOr<ContainmentExplanation> result = ExplainContainment(
        schema_, MustParseQuery(schema_, q1), MustParseQuery(schema_, q2));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *std::move(result) : ContainmentExplanation{};
  }
};

TEST_F(ExplainTest, PositiveWitnessMapping) {
  ContainmentExplanation explanation =
      Explain("{ x | exists u (x in C & u in E & u in x.S) }",
              "{ a | exists b (a in C & b in E & b in a.S) }");
  EXPECT_TRUE(explanation.contained);
  EXPECT_NE(explanation.text.find("Corollary 3.4"), std::string::npos);
  EXPECT_NE(explanation.text.find("witness mapping"), std::string::npos);
  EXPECT_NE(explanation.text.find("a -> x"), std::string::npos);
  EXPECT_NE(explanation.text.find("CONTAINED"), std::string::npos);
}

TEST_F(ExplainTest, PositiveRefutation) {
  ContainmentExplanation explanation =
      Explain("{ x | exists u (x in C & u in E) }",
              "{ x | exists u (x in C & u in E & u in x.S) }");
  EXPECT_FALSE(explanation.contained);
  EXPECT_NE(explanation.text.find("NOT CONTAINED"), std::string::npos);
  EXPECT_NE(explanation.text.find("no non-contradictory mapping"),
            std::string::npos);
}

TEST_F(ExplainTest, UnsatisfiableLhs) {
  ContainmentExplanation explanation =
      Explain("{ x | exists y (x in E & y in F & x = y) }",
              "{ x | x in F }");
  EXPECT_TRUE(explanation.contained);
  EXPECT_NE(explanation.text.find("Q1 is unsatisfiable"), std::string::npos);
}

TEST_F(ExplainTest, UnsatisfiableRhs) {
  ContainmentExplanation explanation =
      Explain("{ x | x in E }",
              "{ x | exists y (x in E & y in F & x = y) }");
  EXPECT_FALSE(explanation.contained);
  EXPECT_NE(explanation.text.find("Q2 is unsatisfiable"), std::string::npos);
}

TEST_F(ExplainTest, InequalityDispatchAndRefutingAugmentation) {
  ContainmentExplanation explanation =
      Explain("{ x | exists y (x in E & y in E) }",
              "{ x | exists y (x in E & y in E & x != y) }");
  EXPECT_FALSE(explanation.contained);
  EXPECT_NE(explanation.text.find("Corollary 3.3"), std::string::npos);
  // The refuting configuration merges x and y.
  EXPECT_NE(explanation.text.find("augmentation S"), std::string::npos);
  EXPECT_NE(explanation.text.find("x = y"), std::string::npos);
}

TEST_F(ExplainTest, NonMembershipDispatchAndRefutingSubset) {
  ContainmentExplanation explanation = Explain(
      "{ x | exists y exists u (x in E & y in C & u in E & u in y.S) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }");
  EXPECT_FALSE(explanation.contained);
  EXPECT_NE(explanation.text.find("Corollary 3.2"), std::string::npos);
  EXPECT_NE(explanation.text.find("membership subset W"), std::string::npos);
  EXPECT_NE(explanation.text.find("x in y.S"), std::string::npos);
}

TEST_F(ExplainTest, FullTheoremDispatch) {
  ContainmentExplanation explanation = Explain(
      "{ x | exists y exists z (x in E & y in C & z in E & x != z & "
      "x notin y.S) }",
      "{ x | exists y exists z (x in E & y in C & z in E & x != z & "
      "x notin y.S) }");
  EXPECT_TRUE(explanation.contained);
  EXPECT_NE(explanation.text.find("Theorem 3.1"), std::string::npos);
}

TEST_F(ExplainTest, VerdictAlwaysMatchesContained) {
  const char* queries[] = {
      "{ x | x in E }",
      "{ x | exists y (x in E & y in E & x != y) }",
      "{ x | exists y (x in E & y in C & x in y.S) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }",
      "{ x | exists u (x in C & u in E & u = x.A) }",
  };
  for (const char* a : queries) {
    for (const char* b : queries) {
      ConjunctiveQuery q1 = MustParseQuery(schema_, a);
      ConjunctiveQuery q2 = MustParseQuery(schema_, b);
      StatusOr<bool> plain = Contained(schema_, q1, q2);
      StatusOr<ContainmentExplanation> explained =
          ExplainContainment(schema_, q1, q2);
      OOCQ_ASSERT_OK(plain.status());
      OOCQ_ASSERT_OK(explained.status());
      EXPECT_EQ(*plain, explained->contained) << a << " vs " << b;
    }
  }
}

}  // namespace
}  // namespace oocq
