// Unit tests for the schema substrate: builder validation, inheritance
// resolution, subtyping, terminal classes, attribute refinement.

#include <gtest/gtest.h>

#include "schema/schema_builder.h"
#include "schema/schema_printer.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseSchema;

TEST(SchemaBuilder, EmptySchemaHasBuiltins) {
  StatusOr<Schema> schema = SchemaBuilder().Build();
  OOCQ_ASSERT_OK(schema.status());
  EXPECT_EQ(schema->num_classes(), kNumBuiltinClasses);
  EXPECT_EQ(schema->class_name(kIntClassId), "Int");
  EXPECT_EQ(schema->class_name(kRealClassId), "Real");
  EXPECT_EQ(schema->class_name(kStringClassId), "String");
}

TEST(SchemaBuilder, BuiltinsAreTerminalAndUnrelated) {
  Schema schema = *SchemaBuilder().Build();
  for (ClassId c = 0; c < kNumBuiltinClasses; ++c) {
    EXPECT_TRUE(schema.is_terminal(c));
    EXPECT_TRUE(schema.class_info(c).is_builtin);
    for (ClassId d = 0; d < kNumBuiltinClasses; ++d) {
      EXPECT_EQ(schema.IsSubclassOf(c, d), c == d);
    }
  }
}

TEST(SchemaBuilder, SimpleHierarchy) {
  SchemaBuilder builder;
  builder.AddClass("Vehicle");
  builder.AddClass("Auto", {"Vehicle"});
  StatusOr<Schema> schema = builder.Build();
  OOCQ_ASSERT_OK(schema.status());
  ClassId vehicle = schema->FindClass("Vehicle").value();
  ClassId auto_cls = schema->FindClass("Auto").value();
  EXPECT_TRUE(schema->IsSubclassOf(auto_cls, vehicle));
  EXPECT_FALSE(schema->IsSubclassOf(vehicle, auto_cls));
  EXPECT_TRUE(schema->IsSubclassOf(vehicle, vehicle));
  EXPECT_FALSE(schema->is_terminal(vehicle));
  EXPECT_TRUE(schema->is_terminal(auto_cls));
}

TEST(SchemaBuilder, ForwardReferencesResolve) {
  SchemaBuilder builder;
  builder.AddClass("Auto", {"Vehicle"});  // Declared before its parent.
  builder.AddClass("Vehicle");
  builder.AddAttribute("Vehicle", "Owner", TypeName::Class("Person"));
  builder.AddClass("Person");
  OOCQ_ASSERT_OK(builder.Build().status());
}

TEST(SchemaBuilder, DuplicateClassNameRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("A");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, BuiltinNameCollisionRejected) {
  SchemaBuilder builder;
  builder.AddClass("Int");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, UnknownParentRejected) {
  SchemaBuilder builder;
  builder.AddClass("A", {"Nowhere"});
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kNotFound);
}

TEST(SchemaBuilder, SelfParentRejected) {
  SchemaBuilder builder;
  builder.AddClass("A", {"A"});
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, CycleRejected) {
  SchemaBuilder builder;
  builder.AddClass("A", {"B"});
  builder.AddClass("B", {"C"});
  builder.AddClass("C", {"A"});
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, TwoCycleRejected) {
  SchemaBuilder builder;
  builder.AddClass("A", {"B"});
  builder.AddClass("B", {"A"});
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, SubclassOfBuiltinRejected) {
  SchemaBuilder builder;
  builder.AddClass("FancyInt", {"Int"});
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, AttributeOnUndeclaredClassRejected) {
  SchemaBuilder builder;
  builder.AddAttribute("Ghost", "A", TypeName::Class("Int"));
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kNotFound);
}

TEST(SchemaBuilder, UnknownAttributeTypeRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddAttribute("A", "X", TypeName::Class("Ghost"));
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kNotFound);
}

TEST(SchemaBuilder, DuplicateAttributeRejected) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddAttribute("A", "X", TypeName::Class("Int"));
  builder.AddAttribute("A", "X", TypeName::Class("Real"));
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, AttributeInheritance) {
  SchemaBuilder builder;
  builder.AddClass("Vehicle");
  builder.AddAttribute("Vehicle", "VehId", TypeName::Class("String"));
  builder.AddClass("Auto", {"Vehicle"});
  Schema schema = *builder.Build();
  ClassId auto_cls = schema.FindClass("Auto").value();
  const TypeExpr* type = schema.FindAttribute(auto_cls, "VehId");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->cls(), kStringClassId);
  EXPECT_FALSE(type->is_set());
}

TEST(SchemaBuilder, CompatibleRefinementKeepsMostSpecificType) {
  SchemaBuilder builder;
  builder.AddClass("Animal");
  builder.AddClass("Dog", {"Animal"});
  builder.AddClass("Owner");
  builder.AddAttribute("Owner", "Pet", TypeName::Class("Animal"));
  builder.AddClass("DogOwner", {"Owner"});
  builder.AddAttribute("DogOwner", "Pet", TypeName::Class("Dog"));
  Schema schema = *builder.Build();
  const TypeExpr* type =
      schema.FindAttribute(schema.FindClass("DogOwner").value(), "Pet");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->cls(), schema.FindClass("Dog").value());
}

TEST(SchemaBuilder, IncompatibleRefinementRejected) {
  SchemaBuilder builder;
  builder.AddClass("Animal");
  builder.AddClass("Rock");
  builder.AddClass("Owner");
  builder.AddAttribute("Owner", "Pet", TypeName::Class("Animal"));
  builder.AddClass("WeirdOwner", {"Owner"});
  builder.AddAttribute("WeirdOwner", "Pet", TypeName::Class("Rock"));
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, SetRefinementMustStaySet) {
  SchemaBuilder builder;
  builder.AddClass("Animal");
  builder.AddClass("Owner");
  builder.AddAttribute("Owner", "Pets", TypeName::SetOf("Animal"));
  builder.AddClass("Weird", {"Owner"});
  builder.AddAttribute("Weird", "Pets", TypeName::Class("Animal"));
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, MultipleInheritanceMergesAttributes) {
  SchemaBuilder builder;
  builder.AddClass("Named");
  builder.AddAttribute("Named", "Name", TypeName::Class("String"));
  builder.AddClass("Aged");
  builder.AddAttribute("Aged", "Age", TypeName::Class("Int"));
  builder.AddClass("Person", {"Named", "Aged"});
  Schema schema = *builder.Build();
  ClassId person = schema.FindClass("Person").value();
  EXPECT_NE(schema.FindAttribute(person, "Name"), nullptr);
  EXPECT_NE(schema.FindAttribute(person, "Age"), nullptr);
}

TEST(SchemaBuilder, DiamondInheritanceComparableTypesResolve) {
  SchemaBuilder builder;
  builder.AddClass("Animal");
  builder.AddClass("Dog", {"Animal"});
  builder.AddClass("P1");
  builder.AddAttribute("P1", "Pet", TypeName::Class("Animal"));
  builder.AddClass("P2");
  builder.AddAttribute("P2", "Pet", TypeName::Class("Dog"));
  builder.AddClass("Child", {"P1", "P2"});
  Schema schema = *builder.Build();
  const TypeExpr* type =
      schema.FindAttribute(schema.FindClass("Child").value(), "Pet");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->cls(), schema.FindClass("Dog").value());
}

TEST(SchemaBuilder, DiamondInheritanceIncomparableTypesRejected) {
  SchemaBuilder builder;
  builder.AddClass("Animal");
  builder.AddClass("Rock");
  builder.AddClass("P1");
  builder.AddAttribute("P1", "Thing", TypeName::Class("Animal"));
  builder.AddClass("P2");
  builder.AddAttribute("P2", "Thing", TypeName::Class("Rock"));
  builder.AddClass("Child", {"P1", "P2"});
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaBuilder, DiamondIncomparableResolvedByRedefinition) {
  SchemaBuilder builder;
  builder.AddClass("Animal");
  builder.AddClass("Rock");
  builder.AddClass("PetRock", {"Animal", "Rock"});
  builder.AddClass("P1");
  builder.AddAttribute("P1", "Thing", TypeName::Class("Animal"));
  builder.AddClass("P2");
  builder.AddAttribute("P2", "Thing", TypeName::Class("Rock"));
  builder.AddClass("Child", {"P1", "P2"});
  builder.AddAttribute("Child", "Thing", TypeName::Class("PetRock"));
  Schema schema = *builder.Build();
  const TypeExpr* type =
      schema.FindAttribute(schema.FindClass("Child").value(), "Thing");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->cls(), schema.FindClass("PetRock").value());
}

TEST(Schema, TerminalDescendants) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  ClassId vehicle = schema.FindClass("Vehicle").value();
  const std::vector<ClassId>& terms = schema.TerminalDescendants(vehicle);
  EXPECT_EQ(terms.size(), 3u);
  for (const char* name : {"Auto", "Trailer", "Truck"}) {
    ClassId c = schema.FindClass(name).value();
    EXPECT_NE(std::find(terms.begin(), terms.end(), c), terms.end()) << name;
    EXPECT_EQ(schema.TerminalDescendants(c),
              std::vector<ClassId>{c});  // Terminal: itself only.
  }
}

TEST(Schema, DeepHierarchyTerminalDescendants) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B", {"A"});
  builder.AddClass("C", {"B"});
  builder.AddClass("D", {"B"});
  builder.AddClass("E", {"A"});
  Schema schema = *builder.Build();
  EXPECT_EQ(schema.TerminalDescendants(schema.FindClass("A").value()).size(),
            3u);  // C, D, E.
  EXPECT_EQ(schema.TerminalDescendants(schema.FindClass("B").value()).size(),
            2u);  // C, D.
}

TEST(Schema, FindClassErrors) {
  Schema schema = *SchemaBuilder().Build();
  EXPECT_EQ(schema.FindClass("Nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(schema.FindClassOrInvalid("Nope"), kInvalidClassId);
}

TEST(Schema, IsSubtype) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  ClassId vehicle = schema.FindClass("Vehicle").value();
  ClassId auto_cls = schema.FindClass("Auto").value();
  EXPECT_TRUE(schema.IsSubtype(TypeExpr::Class(auto_cls),
                               TypeExpr::Class(vehicle)));
  EXPECT_TRUE(schema.IsSubtype(TypeExpr::SetOf(auto_cls),
                               TypeExpr::SetOf(vehicle)));
  EXPECT_FALSE(schema.IsSubtype(TypeExpr::SetOf(auto_cls),
                                TypeExpr::Class(vehicle)));
  EXPECT_FALSE(schema.IsSubtype(TypeExpr::Class(vehicle),
                                TypeExpr::Class(auto_cls)));
}

TEST(Schema, TerminalClassesFilter) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  std::vector<ClassId> with = schema.TerminalClasses(true);
  std::vector<ClassId> without = schema.TerminalClasses(false);
  EXPECT_EQ(with.size(), without.size() + kNumBuiltinClasses);
  // User terminals: Auto, Trailer, Truck, Regular, Discount.
  EXPECT_EQ(without.size(), 5u);
}

TEST(Schema, UserClasses) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  EXPECT_EQ(schema.UserClasses().size(), 7u);
}

TEST(SchemaPrinter, RoundTripsThroughParser) {
  Schema original = MustParseSchema(testing::kVehicleRentalSchema);
  std::string printed = SchemaToString(original, "VehicleRental");
  Schema reparsed = MustParseSchema(printed);
  ASSERT_EQ(reparsed.num_classes(), original.num_classes());
  for (ClassId c = 0; c < original.num_classes(); ++c) {
    EXPECT_EQ(reparsed.class_name(c), original.class_name(c));
    EXPECT_EQ(reparsed.is_terminal(c), original.is_terminal(c));
    EXPECT_EQ(reparsed.class_info(c).all_attributes.size(),
              original.class_info(c).all_attributes.size());
    for (ClassId d = 0; d < original.num_classes(); ++d) {
      EXPECT_EQ(reparsed.IsSubclassOf(c, d), original.IsSubclassOf(c, d));
    }
  }
}

TEST(SchemaPrinter, MultipleParentsSerialized) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C", {"A", "B"});
  Schema schema = *builder.Build();
  std::string printed = SchemaToString(schema);
  EXPECT_NE(printed.find("class C under A, B"), std::string::npos) << printed;
  MustParseSchema(printed);
}

}  // namespace
}  // namespace oocq
