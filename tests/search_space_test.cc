// Unit tests for term-class and the search-space cost metric (§4).

#include "core/search_space.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class SearchSpaceTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);
};

TEST_F(SearchSpaceTest, TermClassOfTerminalVariable) {
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in Auto }");
  EXPECT_EQ(TermClass(schema_, query, 0),
            std::vector<ClassId>{schema_.FindClass("Auto").value()});
}

TEST_F(SearchSpaceTest, TermClassExpandsHierarchy) {
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in Vehicle }");
  EXPECT_EQ(TermClass(schema_, query, 0).size(), 3u);  // Auto/Trailer/Truck.
}

TEST_F(SearchSpaceTest, TermClassOfDisjunction) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | x in Vehicle|Client }");
  // 3 vehicle terminals + Regular + Discount.
  EXPECT_EQ(TermClass(schema_, query, 0).size(), 5u);
}

TEST_F(SearchSpaceTest, CostSumsOverVariables) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in Vehicle & y in Discount) }");
  SearchSpaceCost cost = SearchSpaceCostOf(schema_, query);
  EXPECT_EQ(cost.total, 4u);
  EXPECT_EQ(cost.per_class.at(schema_.FindClass("Auto").value()), 1u);
  EXPECT_EQ(cost.per_class.at(schema_.FindClass("Discount").value()), 1u);
  EXPECT_EQ(cost.per_class.count(schema_.FindClass("Regular").value()), 0u);
}

TEST_F(SearchSpaceTest, CostOfUnionAccumulates) {
  StatusOr<UnionQuery> query = ParseUnionQuery(
      schema_, "{ x | x in Auto } union { x | x in Auto } union "
               "{ x | x in Truck }");
  OOCQ_ASSERT_OK(query.status());
  SearchSpaceCost cost = SearchSpaceCostOf(schema_, *query);
  EXPECT_EQ(cost.total, 3u);
  EXPECT_EQ(cost.per_class.at(schema_.FindClass("Auto").value()), 2u);
}

TEST_F(SearchSpaceTest, CostLeqComponentwise) {
  SearchSpaceCost a;
  a.per_class = {{3, 1}, {4, 2}};
  a.total = 3;
  SearchSpaceCost b;
  b.per_class = {{3, 1}, {4, 2}, {5, 1}};
  b.total = 4;
  EXPECT_TRUE(CostLeq(a, b));
  EXPECT_FALSE(CostLeq(b, a));
  EXPECT_TRUE(CostLeq(a, a));
}

TEST_F(SearchSpaceTest, CostLeqIncomparable) {
  SearchSpaceCost a;
  a.per_class = {{3, 2}};
  SearchSpaceCost b;
  b.per_class = {{4, 2}};
  EXPECT_FALSE(CostLeq(a, b));
  EXPECT_FALSE(CostLeq(b, a));
}

TEST_F(SearchSpaceTest, EmptyCostIsLeast) {
  SearchSpaceCost empty;
  SearchSpaceCost b;
  b.per_class = {{3, 1}};
  EXPECT_TRUE(CostLeq(empty, b));
  EXPECT_TRUE(CostLeq(empty, empty));
}

}  // namespace
}  // namespace oocq
