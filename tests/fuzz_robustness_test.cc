// Robustness tests: no input — however malformed — may crash the lexer
// or the parsers; everything must come back as a Status. Random byte
// strings, random token soups, and systematic truncations of valid
// inputs.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "parser/lexer.h"
#include "parser/parser.h"
#include "parser/state_parser.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseSchema;

class FuzzRobustness : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);
};

TEST_P(FuzzRobustness, RandomBytesNeverCrash) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> length(0, 120);
  std::uniform_int_distribution<int> byte(1, 126);  // Printable-ish ASCII.
  for (int round = 0; round < 60; ++round) {
    std::string input;
    int n = length(rng);
    for (int i = 0; i < n; ++i) input += static_cast<char>(byte(rng));
    // Every front end must return a Status, never crash or hang.
    (void)Tokenize(input);
    (void)ParseSchema(input);
    (void)ParseQuery(schema_, input);
    (void)ParseUnionQuery(schema_, input);
    (void)ParseState(&schema_, input);
  }
}

TEST_P(FuzzRobustness, RandomTokenSoupNeverCrashes) {
  // Structurally plausible garbage: valid tokens in random order.
  const std::string tokens[] = {
      "{", "}", "(", ")", "|", "&", ".", ";", ":", ",", "=", "!=",
      "exists", "in", "notin", "union", "schema", "class", "under",
      "state", "null", "x", "y", "Auto", "Vehicle", "VehRented", "42",
      "2.5", "\"s\""};
  std::mt19937_64 rng(GetParam() + 100);
  std::uniform_int_distribution<size_t> pick(0, std::size(tokens) - 1);
  std::uniform_int_distribution<int> length(1, 40);
  for (int round = 0; round < 60; ++round) {
    std::string input;
    int n = length(rng);
    for (int i = 0; i < n; ++i) {
      input += tokens[pick(rng)];
      input += ' ';
    }
    (void)ParseSchema(input);
    (void)ParseQuery(schema_, input);
    (void)ParseState(&schema_, input);
  }
}

TEST_F(FuzzRobustness, TruncationsOfValidQueryAllReturnStatus) {
  const std::string valid =
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented & "
      "x != y & x notin y.VehRented) }";
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    std::string truncated = valid.substr(0, cut);
    StatusOr<ConjunctiveQuery> result = ParseQuery(schema_, truncated);
    EXPECT_FALSE(result.ok()) << "cut=" << cut;  // All proper prefixes fail.
  }
  OOCQ_EXPECT_OK(ParseQuery(schema_, valid).status());
}

TEST_F(FuzzRobustness, TruncationsOfValidSchemaAllReturnStatus) {
  const std::string valid(testing::kVehicleRentalSchema);
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    (void)ParseSchema(valid.substr(0, cut));
  }
}

TEST_F(FuzzRobustness, TruncationsOfValidStateAllReturnStatus) {
  const std::string valid = R"(
state {
  corolla: Auto { VehId = "COR-1"; Doors = 4; }
  alice: Discount { VehRented = { corolla }; Rate = 0.1; }
})";
  for (size_t cut = 0; cut < valid.size(); cut += 2) {
    (void)ParseState(&schema_, valid.substr(0, cut));
  }
}

TEST_F(FuzzRobustness, PathologicalNesting) {
  // Deep brace nesting must not blow the stack.
  std::string deep(5000, '{');
  (void)ParseQuery(schema_, deep);
  (void)ParseSchema(deep);
  std::string long_path = "{ x | x in Auto & x";
  for (int i = 0; i < 2000; ++i) long_path += ".VehId";
  long_path += " = x }";
  (void)ParseQuery(schema_, long_path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRobustness,
                         ::testing::Range(uint64_t{0}, uint64_t{6}));

}  // namespace
}  // namespace oocq
