// Unit tests for the containment engine beyond the paper's worked
// examples: Cor 3.4 fast path, Cor 3.2/3.3 loops, the full Thm 3.1,
// union containment (Thm 4.1), and edge cases.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class ContainmentTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Con {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: D; S: {D}; T: {E}; }
})");

  bool IsContained(const std::string& q1, const std::string& q2) {
    StatusOr<bool> result = Contained(schema_, MustParseQuery(schema_, q1),
                                      MustParseQuery(schema_, q2));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() && *result;
  }
};

// --------------------------- basics ---------------------------

TEST_F(ContainmentTest, SelfContainment) {
  const char* queries[] = {
      "{ x | x in E }",
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists y (x in E & y in E & x != y) }",
      "{ x | exists y (x in E & y in C & x in y.S) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(IsContained(q, q)) << q;
  }
}

TEST_F(ContainmentTest, UnsatisfiableLhsContainedInAnything) {
  EXPECT_TRUE(IsContained("{ x | exists y (x in E & y in F & x = y) }",
                          "{ x | x in F }"));
}

TEST_F(ContainmentTest, SatisfiableLhsNotInUnsatisfiableRhs) {
  EXPECT_FALSE(IsContained("{ x | x in E }",
                           "{ x | exists y (x in E & y in F & x = y) }"));
}

TEST_F(ContainmentTest, DifferentFreeClassesNotContained) {
  EXPECT_FALSE(IsContained("{ x | x in E }", "{ x | x in F }"));
}

TEST_F(ContainmentTest, MoreAtomsContainedInFewer) {
  EXPECT_TRUE(IsContained(
      "{ x | exists u (x in C & u in E & u = x.A & u in x.S) }",
      "{ x | exists u (x in C & u in E & u = x.A) }"));
  EXPECT_FALSE(IsContained(
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists u (x in C & u in E & u = x.A & u in x.S) }"));
}

TEST_F(ContainmentTest, ExtraBoundVariableFolds) {
  // Classic CQ redundancy: two witnesses fold to one.
  EXPECT_TRUE(IsContained(
      "{ x | exists u (x in C & u in E & u in x.S) }",
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v in x.S) }"));
}

TEST_F(ContainmentTest, NonTerminalQueryRejected) {
  StatusOr<bool> result =
      Contained(schema_, MustParseQuery(schema_, "{ x | x in D }"),
                MustParseQuery(schema_, "{ x | x in D }"));
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// --------------------------- attribute chains ---------------------------

TEST_F(ContainmentTest, AttributeEqualityDirectionality) {
  // Q1 binds both A and B; Q2 only A.
  EXPECT_TRUE(IsContained(
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }",
      "{ x | exists u (x in C & u in E & u = x.A) }"));
  EXPECT_FALSE(IsContained(
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }"));
}

TEST_F(ContainmentTest, SharedWitnessImpliesSeparateWitnesses) {
  // u = x.A & u = x.B (same witness) is contained in the query with
  // separate witnesses, not vice versa.
  EXPECT_TRUE(IsContained(
      "{ x | exists u (x in C & u in E & u = x.A & u = x.B) }",
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }"));
  EXPECT_FALSE(IsContained(
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }",
      "{ x | exists u (x in C & u in E & u = x.A & u = x.B) }"));
}

// --------------------------- inequalities (Cor 3.3) -------------------

TEST_F(ContainmentTest, InequalityRhsNeedsAllAugmentations) {
  // Q2 = x != y over E. Q1 with three vars & chain of inequalities is
  // contained (Ex 3.2 pattern), but a Q1 without any distinctness is not.
  EXPECT_FALSE(IsContained(
      "{ x | exists y (x in E & y in E) }",
      "{ x | exists y (x in E & y in E & x != y) }"));
}

TEST_F(ContainmentTest, InequalityImpliedByMembershipTyping) {
  // x in y.T forces x in E... but an F variable is distinct from x by
  // class; the inequality in Q2 is implied.
  EXPECT_TRUE(IsContained(
      "{ x | exists z (x in E & z in F) }",
      "{ x | exists z (x in E & z in F & x != z) }"));
}

TEST_F(ContainmentTest, InequalityOnAttributeTerms) {
  EXPECT_TRUE(IsContained(
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B & u != v) }",
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }"));
  EXPECT_FALSE(IsContained(
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B) }",
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B & u != v) }"));
}

TEST_F(ContainmentTest, EqualAttributesDefeatInequalityRhs) {
  // Q1 forces A = B; Q2 requires A != B.
  EXPECT_FALSE(IsContained(
      "{ x | exists u (x in C & u in E & u = x.A & u = x.B) }",
      "{ x | exists u exists v (x in C & u in E & v in E & u = x.A & "
      "v = x.B & u != v) }"));
}

// --------------------------- non-membership (Cor 3.2) -----------------

TEST_F(ContainmentTest, NonMembershipNeedsSetTermInLhs) {
  // Example 3.3 generalization over this schema.
  EXPECT_FALSE(IsContained(
      "{ x | exists y (x in E & y in C) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }"));
}

TEST_F(ContainmentTest, NonMembershipWithSetTermStillUnsafe) {
  // Q1 mentions y.S (so it is non-null) but does not exclude x from it:
  // the W-subset containing 'x in y.S' has no mapping.
  EXPECT_FALSE(IsContained(
      "{ x | exists y exists u (x in E & y in C & u in E & u in y.S) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }"));
}

TEST_F(ContainmentTest, NonMembershipDerivedFromNonMembership) {
  EXPECT_TRUE(IsContained(
      "{ x | exists y (x in E & y in C & x notin y.S) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }"));
}

TEST_F(ContainmentTest, TypeTrivialNonMembershipNeedsNonNullSet) {
  // Q2's 'z notin y.T' is type-trivial (z in F, T holds E's) but forces
  // y.T non-null; Q1 says nothing about y.T.
  EXPECT_FALSE(IsContained(
      "{ x | exists y exists z (x in E & y in C & z in F) }",
      "{ x | exists y exists z (x in E & y in C & z in F & "
      "z notin y.T) }"));
  // With y.T pinned non-null in Q1 through a membership, it holds.
  EXPECT_TRUE(IsContained(
      "{ x | exists y exists z exists w (x in E & y in C & z in F & "
      "w in E & w in y.T) }",
      "{ x | exists y exists z (x in E & y in C & z in F & "
      "z notin y.T) }"));
}

TEST_F(ContainmentTest, MembershipPlusNonMembershipInteraction) {
  // Q1 puts x in y.S; Q2 demands x notin y.S: never contained.
  EXPECT_FALSE(IsContained(
      "{ x | exists y (x in E & y in C & x in y.S) }",
      "{ x | exists y (x in E & y in C & x notin y.S) }"));
}

// --------------------------- Thm 3.1 (both kinds) ---------------------

TEST_F(ContainmentTest, FullTheoremBothNegativeKinds) {
  const char* q2 =
      "{ x | exists y exists z (x in E & y in C & z in E & x != z & "
      "x notin y.S) }";
  // Q1 supplies distinctness (classes), the set term, and excludes x.
  EXPECT_TRUE(IsContained(
      "{ x | exists y exists z (x in E & y in C & z in E & x != z & "
      "x notin y.S) }",
      q2));
  // Remove the exclusion: not contained.
  EXPECT_FALSE(IsContained(
      "{ x | exists y exists z (x in E & y in C & z in E & x != z) }", q2));
}

TEST_F(ContainmentTest, StatsAreReported) {
  ContainmentStats stats;
  ConjunctiveQuery q1 = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E & x != y) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E & x != y) }");
  StatusOr<bool> result = Contained(schema_, q1, q2, {}, &stats);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
  EXPECT_GE(stats.augmentations, 1u);
  EXPECT_GE(stats.mapping_searches, 1u);
  EXPECT_GT(stats.mapping_steps, 0u);
}

TEST_F(ContainmentTest, MembershipCandidateCapEnforced) {
  ContainmentOptions options;
  options.max_membership_candidates = 0;
  // q1 mentions y.S without excluding x, so 'x in y.S' is a candidate
  // membership atom and |T| = 1 exceeds the cap of 0.
  ConjunctiveQuery q1 = MustParseQuery(
      schema_, "{ x | exists y exists u (x in E & y in C & u in E & "
               "u in y.S) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in C & x notin y.S) }");
  StatusOr<bool> result = Contained(schema_, q1, q2, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --------------------------- equivalence ------------------------------

TEST_F(ContainmentTest, EquivalenceOfRenamedQueries) {
  ConjunctiveQuery q1 = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u in x.S) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_, "{ a | exists b (a in C & b in E & b in a.S) }");
  StatusOr<bool> equivalent = EquivalentQueries(schema_, q1, q2);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(ContainmentTest, EquivalenceWithRedundantAtom) {
  ConjunctiveQuery q1 = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v in x.S) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u in x.S) }");
  StatusOr<bool> equivalent = EquivalentQueries(schema_, q1, q2);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

// --------------------------- unions (Thm 4.1) -------------------------

class UnionContainmentTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema U {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");

  UnionQuery Union(const std::string& text) {
    StatusOr<UnionQuery> parsed = ParseUnionQuery(schema_, text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return parsed.ok() ? *std::move(parsed) : UnionQuery();
  }
};

TEST_F(UnionContainmentTest, ComponentwiseContainment) {
  UnionQuery m = Union("{ x | x in E } union { x | x in F }");
  UnionQuery n = Union("{ x | x in F } union { x | x in E }");
  StatusOr<bool> result = UnionContained(schema_, m, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
}

TEST_F(UnionContainmentTest, MissingDisjunctBreaksContainment) {
  UnionQuery m = Union("{ x | x in E } union { x | x in F }");
  UnionQuery n = Union("{ x | x in E }");
  StatusOr<bool> result = UnionContained(schema_, m, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_FALSE(*result);
}

TEST_F(UnionContainmentTest, SubsetOfDisjunctsContained) {
  UnionQuery m = Union("{ x | x in E }");
  UnionQuery n = Union("{ x | x in E } union { x | x in F }");
  StatusOr<bool> result = UnionContained(schema_, m, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
}

TEST_F(UnionContainmentTest, EmptyUnionContainedInAnything) {
  UnionQuery empty;
  UnionQuery n = Union("{ x | x in E }");
  StatusOr<bool> result = UnionContained(schema_, empty, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
  result = UnionContained(schema_, n, empty);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_FALSE(*result);
}

TEST_F(UnionContainmentTest, UnsatisfiableDisjunctsIgnored) {
  UnionQuery m = Union(
      "{ x | x in E } union "
      "{ x | exists y (x in E & y in F & x = y) }");
  UnionQuery n = Union("{ x | x in E }");
  StatusOr<bool> result = UnionContained(schema_, m, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
}

TEST_F(UnionContainmentTest, NonPositiveDisjunctRejected) {
  UnionQuery m = Union("{ x | exists y (x in E & y in E & x != y) }");
  UnionQuery n = Union("{ x | x in E }");
  EXPECT_EQ(UnionContained(schema_, m, n).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(UnionContainmentTest, CrossClassInequalityNormalizesToPositive) {
  // The inequality E vs F is removed by normalization, so the disjunct
  // counts as positive for Thm 4.1.
  UnionQuery m = Union("{ x | exists y (x in E & y in F & x != y) }");
  UnionQuery n = Union("{ x | exists y (x in E & y in F) }");
  StatusOr<bool> result = UnionContained(schema_, m, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);
}

TEST_F(UnionContainmentTest, UnionEquivalence) {
  UnionQuery m = Union("{ x | x in E } union { x | x in F }");
  UnionQuery n = Union("{ x | x in F } union { x | x in E }");
  StatusOr<bool> result = UnionEquivalent(schema_, m, n);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_TRUE(*result);

  UnionQuery p = Union("{ x | x in E }");
  result = UnionEquivalent(schema_, m, p);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_FALSE(*result);
}

}  // namespace
}  // namespace oocq
