// EventServer-specific behavior the transport-generic suites can't pin
// down: idle-session timeouts (the timer wheel), slow-reader
// backpressure shedding (the bounded output buffer), pipelined request
// ordering, and connection counts beyond thread-per-connection comfort.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/event_server.h"
#include "server/service.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "test_util.h"

namespace oocq::server {
namespace {

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool SendString(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RecvAll(int fd) {
  std::string all;
  char chunk[16384];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(got));
  }
  return all;
}

size_t CountOccurrences(const std::string& haystack, const std::string& s) {
  size_t count = 0;
  for (size_t at = haystack.find(s); at != std::string::npos;
       at = haystack.find(s, at + s.size())) {
    ++count;
  }
  return count;
}

TEST(EventServerTest, IdleConnectionsTimeOutActiveOnesSurvive) {
  OocqService service;
  EventServerOptions options;
  options.idle_timeout_ms = 200;
  EventServer server(&service, options);
  OOCQ_ASSERT_OK(server.Start());

  int idle = ConnectTo(server.port());
  int active = ConnectTo(server.port());

  // The idle socket sends one PING and then goes silent; the active one
  // keeps pinging past several timeout windows.
  ASSERT_TRUE(SendString(idle, "PING\n"));
  char chunk[256];
  ASSERT_GT(::recv(idle, chunk, sizeof(chunk), 0), 0);

  std::string active_replies;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(700);
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(SendString(active, "PING\n"));
    ssize_t got = ::recv(active, chunk, sizeof(chunk), 0);
    ASSERT_GT(got, 0) << "active connection was closed";
    active_replies.append(chunk, static_cast<size_t>(got));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // The idle one is gone by now: a blocking read sees EOF, not a hang.
  EXPECT_EQ(RecvAll(idle), "");
  EXPECT_GE(service.metrics().CounterValue("server/idle_closed"), 1u);
  EXPECT_GE(CountOccurrences(active_replies, "OK"), 10u);

  ::close(idle);
  ::close(active);
  server.Stop();
}

TEST(EventServerTest, SlowReaderIsShedWithRetryableUnavailable) {
  OocqService service;
  OOCQ_ASSERT_OK(service.CreateSession(::oocq::testing::kVehicleRentalSchema)
                     .status());
  EventServerOptions options;
  // Small reply budget: once the kernel socket buffers fill against a
  // non-reading client, queued requests must shed instead of buffering
  // reply bytes without bound. (Kept well above the shed-reply volume so
  // the 4x hard-drop doesn't fire — this test is about shedding.)
  options.max_output_buffer_bytes = 64 * 1024;
  options.max_pipeline_depth = 1u << 20;  // isolate the output bound
  options.so_sndbuf_bytes = 16 * 1024;    // don't let the kernel hide it
  EventServer server(&service, options);
  OOCQ_ASSERT_OK(server.Start());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // A genuinely slow reader: a tiny receive window (set before connect so
  // the handshake advertises it) and no reads until the server has
  // processed the whole burst.
  int rcvbuf = 8192;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Pipeline far more METRICS reply bytes (~60 B each against a fresh
  // registry) than the reply budget plus what the shrunken socket
  // buffers absorb — but few enough that the shed replies themselves
  // stay under the 4x hard-drop bound.
  constexpr int kRequests = 4000;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) burst += "METRICS\n";
  ASSERT_TRUE(SendString(fd, burst));
  ::shutdown(fd, SHUT_WR);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // RecvAll returning at all (EOF, not a hang) is part of the contract:
  // the server either delivers or drops, it never buffers forever.
  std::string replies = RecvAll(fd);
  ::close(fd);

  // The server answered some requests, then the bound engaged: later
  // requests were shed rather than buffered. (Delivery of the shed
  // replies themselves is best-effort — a reader this slow may be
  // hard-dropped once even sheds accumulate past 4x the bound.)
  EXPECT_GE(CountOccurrences(replies, "\n.\n"), 1u);
  EXPECT_LE(CountOccurrences(replies, "\n.\n"),
            static_cast<size_t>(kRequests));
  EXPECT_GE(service.metrics().CounterValue("server/backpressure_shed"), 1u);

  // The loop itself is unharmed: a well-behaved client still gets served.
  int fd2 = ConnectTo(server.port());
  ASSERT_TRUE(SendString(fd2, "PING\nQUIT\n"));
  EXPECT_NE(RecvAll(fd2).find("OK"), std::string::npos);
  ::close(fd2);
  server.Stop();
}

TEST(EventServerTest, PipelinedRepliesArriveInRequestOrder) {
  OocqService service;
  StatusOr<std::string> sid =
      service.CreateSession(::oocq::testing::kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  EventServer server(&service);
  OOCQ_ASSERT_OK(server.Start());

  int fd = ConnectTo(server.port());
  ASSERT_TRUE(SendString(
      fd, "HELLO 1\nSAT " + *sid + "\n{ x | x in Auto }\n.\nPING\nQUIT\n"));
  std::string replies = RecvAll(fd);
  ::close(fd);

  size_t hello = replies.find("OK protocol=1");
  size_t sat = replies.find("OK satisfiable=1");
  size_t ping = replies.find("OK\n.\n", sat == std::string::npos ? 0 : sat);
  ASSERT_NE(hello, std::string::npos) << replies;
  ASSERT_NE(sat, std::string::npos) << replies;
  ASSERT_NE(ping, std::string::npos) << replies;
  EXPECT_LT(hello, sat);
  EXPECT_LT(sat, ping);
  server.Stop();
}

TEST(EventServerTest, LoopAndQueueGaugesUnderStalledPool) {
  // With the only dispatch worker stalled on the pool/dispatch failpoint,
  // requests from concurrent connections pile up in the dispatch queue
  // while the loop keeps reading — the depth gauge must see the pile, and
  // the loop-lag histogram must have sampled the (still-responsive) loop
  // iterations. One connection alone cannot grow the gauge: Pump keeps at
  // most one of its requests in flight to preserve reply order.
  MetricsRegistry registry;
  MetricsScope scope(&registry);
  ASSERT_TRUE(scope.active());
  OOCQ_ASSERT_OK(Failpoints::Configure("pool/dispatch=delay:15"));

  {
    OocqService service;
    EventServerOptions options;
    options.dispatch_threads = 1;  // one stalled worker = a visible queue
    EventServer server(&service, options);
    OOCQ_ASSERT_OK(server.Start());

    constexpr int kConns = 6;
    std::vector<int> fds;
    for (int i = 0; i < kConns; ++i) fds.push_back(ConnectTo(server.port()));
    for (int fd : fds) ASSERT_TRUE(SendString(fd, "PING\nQUIT\n"));
    for (int fd : fds) {
      EXPECT_EQ(RecvAll(fd).rfind("OK\n.\nOK", 0), 0u);
      ::close(fd);
    }
    server.Stop();
  }
  Failpoints::Reset();

  MetricsRegistry::Snapshot snap = registry.Snap();
  const MetricsRegistry::HistogramSnapshot* depth = nullptr;
  const MetricsRegistry::HistogramSnapshot* loop_lag = nullptr;
  const MetricsRegistry::HistogramSnapshot* wait = nullptr;
  for (const auto& histogram : snap.histograms) {
    if (histogram.name == "server/dispatch_queue_depth") depth = &histogram;
    if (histogram.name == "server/loop_iteration_us") loop_lag = &histogram;
    if (histogram.name == "server/dispatch_wait_us") wait = &histogram;
  }
  ASSERT_NE(depth, nullptr);
  ASSERT_NE(loop_lag, nullptr);
  ASSERT_NE(wait, nullptr);
  // 6 PINGs + 6 QUITs behind a worker sleeping 15ms per task: while the
  // head request stalls, the other connections' requests queue behind it.
  EXPECT_GE(depth->count, 6u);
  EXPECT_GE(depth->max, 4u);
  // The loop itself stayed live and sampled its iterations.
  EXPECT_GT(loop_lag->count, 0u);
  EXPECT_GT(registry.CounterValue("server/loop_wakeups"), 0u);
  // Dispatch wait reflects the stall: every task sits behind at least its
  // own 15ms failpoint delay, the tail behind several.
  EXPECT_GE(wait->count, 6u);
  EXPECT_GE(wait->max, 15000u);
}

TEST(EventServerTest, TwoHundredConcurrentConnectionsOneLoop) {
  OocqService service;
  EventServer server(&service);
  OOCQ_ASSERT_OK(server.Start());

  // All sockets connect and hold before any request: the loop owns every
  // connection concurrently rather than queueing accepts behind replies.
  constexpr int kConns = 200;
  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) fds.push_back(ConnectTo(server.port()));

  for (int fd : fds) ASSERT_TRUE(SendString(fd, "PING\nQUIT\n"));
  int ok = 0;
  for (int fd : fds) {
    if (RecvAll(fd).rfind("OK\n.\nOK", 0) == 0) ++ok;
    ::close(fd);
  }
  EXPECT_EQ(ok, kConns);
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kConns));
  server.Stop();
}

}  // namespace
}  // namespace oocq::server
