// Unit tests for the canonical witness construction (the completeness
// half of Thm 2.2) and the counterexample search, plus the random state
// generator's legality.

#include <gtest/gtest.h>

#include "state/evaluation.h"
#include "state/generator.h"
#include "state/witness.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class WitnessTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Wit {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: D; S: {D}; }
})");

  // Asserts the canonical witness state actually satisfies the query.
  void ExpectWitnessWorks(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    StatusOr<State> state = BuildCanonicalWitnessState(schema_, query);
    OOCQ_ASSERT_OK(state.status());
    OOCQ_EXPECT_OK(state->Validate());
    StatusOr<std::vector<Oid>> answers = Evaluate(*state, query);
    OOCQ_ASSERT_OK(answers.status());
    EXPECT_FALSE(answers->empty()) << text;
  }
};

TEST_F(WitnessTest, SimpleRange) { ExpectWitnessWorks("{ x | x in E }"); }

TEST_F(WitnessTest, AttributeEquality) {
  ExpectWitnessWorks("{ x | exists u (x in C & u in E & u = x.A) }");
}

TEST_F(WitnessTest, TwoAttributes) {
  ExpectWitnessWorks(
      "{ x | exists u exists v (x in C & u in E & v in F & u = x.A & "
      "v = x.B) }");
}

TEST_F(WitnessTest, SharedWitness) {
  ExpectWitnessWorks(
      "{ x | exists u (x in C & u in E & u = x.A & u = x.B) }");
}

TEST_F(WitnessTest, Membership) {
  ExpectWitnessWorks(
      "{ x | exists u exists v (x in C & u in E & v in F & u in x.S & "
      "v in x.S) }");
}

TEST_F(WitnessTest, NonMembershipGetsEmptySet) {
  ExpectWitnessWorks(
      "{ x | exists u (x in C & u in E & u notin x.S) }");
}

TEST_F(WitnessTest, MembershipAndNonMembershipMix) {
  ExpectWitnessWorks(
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v notin x.S) }");
}

TEST_F(WitnessTest, Inequalities) {
  ExpectWitnessWorks(
      "{ x | exists y exists z (x in E & y in E & z in E & x != y & "
      "y != z & x != z) }");
}

TEST_F(WitnessTest, EqualitiesCollapseObjects) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E & x = y) }");
  StatusOr<State> state = BuildCanonicalWitnessState(schema_, query);
  OOCQ_ASSERT_OK(state.status());
  // One object per equivalence class: x ~ y share one object.
  EXPECT_EQ(state->Extent(schema_.FindClass("E").value()).size(), 1u);
}

TEST_F(WitnessTest, PrimitiveVariables) {
  Schema schema = MustParseSchema(R"(
schema P {
  class C { Name: String; Age: Int; }
})");
  ConjunctiveQuery query = MustParseQuery(
      schema,
      "{ x | exists n exists a (x in C & n in String & a in Int & "
      "n = x.Name & a = x.Age) }");
  StatusOr<State> state = BuildCanonicalWitnessState(schema, query);
  OOCQ_ASSERT_OK(state.status());
  StatusOr<std::vector<Oid>> answers = Evaluate(*state, query);
  OOCQ_ASSERT_OK(answers.status());
  EXPECT_EQ(answers->size(), 1u);
}

TEST_F(WitnessTest, DistinctPrimitiveClassesGetDistinctValues) {
  Schema schema = MustParseSchema(R"(
schema P2 {
  class C { X: Int; Y: Int; }
})");
  // a != b must hold in the witness: fresh values per class.
  ConjunctiveQuery query = MustParseQuery(
      schema,
      "{ x | exists a exists b (x in C & a in Int & b in Int & a = x.X & "
      "b = x.Y & a != b) }");
  StatusOr<State> state = BuildCanonicalWitnessState(schema, query);
  OOCQ_ASSERT_OK(state.status());
  StatusOr<std::vector<Oid>> answers = Evaluate(*state, query);
  OOCQ_ASSERT_OK(answers.status());
  EXPECT_EQ(answers->size(), 1u);
}

TEST_F(WitnessTest, UnsatisfiableQueryRejected) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in F & x = y) }");
  EXPECT_EQ(BuildCanonicalWitnessState(schema_, query).status().code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------ counterexample search ------------------------

TEST_F(WitnessTest, FindsCounterexampleForStrictContainment) {
  // Q1 = everything in E; Q2 = E objects inside some C's set.
  ConjunctiveQuery q1 = MustParseQuery(schema_, "{ x | x in E }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in C & x in y.S) }");
  StatusOr<std::optional<State>> counterexample =
      FindContainmentCounterexample(schema_, q1, q2);
  OOCQ_ASSERT_OK(counterexample.status());
  ASSERT_TRUE(counterexample->has_value());
  // Confirm it separates the queries.
  std::vector<Oid> a1 = *Evaluate(**counterexample, q1);
  std::vector<Oid> a2 = *Evaluate(**counterexample, q2);
  EXPECT_FALSE(std::includes(a2.begin(), a2.end(), a1.begin(), a1.end()));
}

TEST_F(WitnessTest, NoCounterexampleForActualContainment) {
  ConjunctiveQuery q1 = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in C & x in y.S) }");
  ConjunctiveQuery q2 = MustParseQuery(schema_, "{ x | x in E }");
  WitnessSearchOptions options;
  options.max_trials = 10;
  StatusOr<std::optional<State>> counterexample =
      FindContainmentCounterexample(schema_, q1, q2, options);
  OOCQ_ASSERT_OK(counterexample.status());
  EXPECT_FALSE(counterexample->has_value());
}

TEST_F(WitnessTest, CanonicalStateSeparatesExample31) {
  // Q2 ⊄ Q1 in Example 3.1; the canonical witness of Q2 separates them.
  Schema schema = MustParseSchema(testing::kExample31Schema);
  ConjunctiveQuery q1 = MustParseQuery(
      schema,
      "{ x | exists y exists z (x in C & y in C & z in D & z = y.A & "
      "z in y.B & x = y) }");
  ConjunctiveQuery q2 = MustParseQuery(
      schema, "{ y | exists z (y in C & z in D & z = y.A) }");
  StatusOr<std::optional<State>> counterexample =
      FindContainmentCounterexample(schema, q2, q1);
  OOCQ_ASSERT_OK(counterexample.status());
  EXPECT_TRUE(counterexample->has_value());
}

// ------------------------ random generator ------------------------

TEST(GeneratorTest, GeneratesLegalStates) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    GeneratorParams params;
    params.seed = seed;
    State state = GenerateRandomState(schema, params);
    OOCQ_EXPECT_OK(state.Validate());
    EXPECT_GT(state.num_objects(), 0u);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  GeneratorParams params;
  params.seed = 7;
  State a = GenerateRandomState(schema, params);
  State b = GenerateRandomState(schema, params);
  ASSERT_EQ(a.num_objects(), b.num_objects());
  for (Oid oid = 0; oid < a.num_objects(); ++oid) {
    EXPECT_EQ(a.class_of(oid), b.class_of(oid));
  }
}

TEST(GeneratorTest, ObjectsPerClassRespected) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  GeneratorParams params;
  params.objects_per_class = 3;
  State state = GenerateRandomState(schema, params);
  EXPECT_EQ(state.Extent(schema.FindClass("Auto").value()).size(), 3u);
  EXPECT_EQ(state.Extent(schema.FindClass("Vehicle").value()).size(), 9u);
}

TEST(GeneratorTest, NullProbabilityOneLeavesAllNull) {
  Schema schema = MustParseSchema(testing::kVehicleRentalSchema);
  GeneratorParams params;
  params.null_probability = 1.0;
  State state = GenerateRandomState(schema, params);
  for (Oid oid : state.Extent(schema.FindClass("Auto").value())) {
    EXPECT_TRUE(state.GetAttribute(oid, "VehId")->is_null());
  }
}

}  // namespace
}  // namespace oocq
