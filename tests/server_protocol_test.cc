// ProtocolHandler behavior the e2e smoke doesn't pin down: the METRICS
// verb's reply framing, and malformed dot-stuffed frames at the TCP layer
// (a line over the reader's cap, a payload whose "." terminator never
// arrives) — both must drop the connection, never hang or crash the
// server, and never corrupt a neighboring connection.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/service.h"
#include "test_util.h"
#include "transport_test_util.h"

namespace oocq::server {
namespace {

using ::oocq::testing::kVehicleRentalSchema;

TEST(ProtocolHandlerTest, MetricsReplyIsFramedJson) {
  OocqService service;
  OOCQ_ASSERT_OK(service.CreateSession(kVehicleRentalSchema).status());
  ProtocolHandler handler(&service);

  ProtocolReply reply = handler.Handle(ParseCommandLine("METRICS"), {});
  EXPECT_FALSE(reply.close);
  EXPECT_EQ(reply.text.rfind("OK", 0), 0u) << reply.text;
  EXPECT_NE(reply.text.find("\"counters\""), std::string::npos) << reply.text;
  EXPECT_NE(reply.text.find("server/sessions_created"), std::string::npos);
  // Every reply is "."-framed so clients can stream them.
  ASSERT_GE(reply.text.size(), 2u);
  EXPECT_EQ(reply.text.substr(reply.text.size() - 2), ".\n");
}

TEST(ProtocolHandlerTest, MetricsSeesCacheEvictionCounter) {
  // A cache capped at one entry per shard evicts on the second distinct
  // decision; the eviction must surface in the METRICS registry.
  ServiceOptions options;
  options.engine.cache.max_entries = 1;
  options.engine.cache.num_shards = 1;
  OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  ProtocolHandler handler(&service);

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"{ x | x in Auto }", "{ x | x in Vehicle }"},
      {"{ x | x in Truck }", "{ x | x in Vehicle }"},
      {"{ x | x in Trailer }", "{ x | x in Vehicle }"},
  };
  for (const auto& [q1, q2] : pairs) {
    ProtocolReply reply =
        handler.Handle(ParseCommandLine("CONTAIN " + *sid), {q1, q2});
    EXPECT_EQ(reply.text.rfind("OK contained=1", 0), 0u) << reply.text;
  }
  ProtocolReply metrics = handler.Handle(ParseCommandLine("METRICS"), {});
  EXPECT_NE(metrics.text.find("cache/evictions"), std::string::npos)
      << metrics.text;
}

TEST(ProtocolHandlerTest, RequestIdPrefixParses) {
  CommandLine tagged = ParseCommandLine("ID r7 CONTAIN s1 deadline_ms=50");
  EXPECT_EQ(tagged.verb, "CONTAIN");
  EXPECT_EQ(tagged.request_id, "r7");
  ASSERT_EQ(tagged.args.size(), 1u);
  EXPECT_EQ(tagged.args[0], "s1");
  ASSERT_EQ(tagged.params.size(), 1u);
  EXPECT_EQ(tagged.params[0].first, "deadline_ms");

  // A bare `ID` with no token and no verb is not a tagged request; the
  // parser surfaces it as the (unknown) verb so Handle can ERR it.
  CommandLine bare = ParseCommandLine("ID");
  EXPECT_TRUE(bare.request_id.empty());
}

TEST(ProtocolHandlerTest, RequestIdEchoedOnOkAndErr) {
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  ProtocolHandler handler(&service);

  const std::string q = "{ x | x in Auto }";
  ProtocolReply ok = handler.Handle(
      ParseCommandLine("ID tok-42 CONTAIN " + *sid), {q, q});
  // The token is inserted right after the OK, before the verb's fields.
  EXPECT_EQ(ok.text.rfind("OK id=tok-42 contained=1", 0), 0u) << ok.text;

  ProtocolReply err = handler.Handle(
      ParseCommandLine("ID tok-43 CONTAIN no-such-session"), {q, q});
  EXPECT_EQ(err.text.rfind("ERR ", 0), 0u) << err.text;
  EXPECT_NE(err.text.find(" id=tok-43"), std::string::npos) << err.text;
}

TEST(ProtocolHandlerTest, LegacyIdParamIsNotEchoed) {
  // Clients that predate the ID prefix pass `id=` as a plain param; their
  // replies must stay byte-identical (the token still reaches spans).
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  ProtocolHandler handler(&service);

  const std::string q = "{ x | x in Auto }";
  ProtocolReply reply = handler.Handle(
      ParseCommandLine("CONTAIN " + *sid + " id=c7"), {q, q});
  EXPECT_EQ(reply.text.rfind("OK contained=1", 0), 0u) << reply.text;
  EXPECT_EQ(reply.text.find("id=c7"), std::string::npos) << reply.text;
}

TEST(ProtocolHandlerTest, StatsReplyIsPrometheusTextWithHealthGauges) {
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  ProtocolHandler handler(&service);

  const std::string q = "{ x | x in Auto }";
  ProtocolReply contained =
      handler.Handle(ParseCommandLine("CONTAIN " + *sid), {q, q});
  ASSERT_EQ(contained.text.rfind("OK", 0), 0u) << contained.text;

  ProtocolReply stats = handler.Handle(ParseCommandLine("STATS"), {});
  EXPECT_FALSE(stats.close);
  EXPECT_EQ(stats.text.rfind("OK", 0), 0u) << stats.text;
  // Prometheus exposition: typed counters and quantile summaries for the
  // per-verb latency histograms.
  EXPECT_NE(stats.text.find("# TYPE oocq_server_requests counter\n"),
            std::string::npos);
  EXPECT_NE(stats.text.find("oocq_server_requests 1\n"), std::string::npos);
  EXPECT_NE(
      stats.text.find("oocq_server_verb_contained_us{quantile=\"0.5\"} "),
      std::string::npos)
      << stats.text;
  EXPECT_NE(stats.text.find("oocq_server_verb_contained_us_count 1\n"),
            std::string::npos);
  // HEALTH's fields ride along as gauges from the same collection path.
  EXPECT_NE(stats.text.find("oocq_server_sessions 1\n"), std::string::npos);
  EXPECT_NE(stats.text.find("oocq_server_completed_total"),
            std::string::npos);
  // Replies stay "."-framed like every other verb.
  ASSERT_GE(stats.text.size(), 2u);
  EXPECT_EQ(stats.text.substr(stats.text.size() - 2), ".\n");
}

TEST(ProtocolHandlerTest, MalformedCommandsAreErrNotCrash) {
  OocqService service;
  StatusOr<std::string> sid = service.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  ProtocolHandler handler(&service);

  struct Case {
    const char* line;
    std::vector<std::string> payload;
  };
  const std::vector<Case> cases = {
      {"FROBNICATE", {}},
      {"SESSION", {}},
      {"SESSION DROP", {}},
      {"CONTAIN", {"{ x | x in Auto }", "{ x | x in Vehicle }"}},
      {"CONTAIN s999", {"{ x | x in Auto }", "{ x | x in Vehicle }"}},
      {"DEFINE s1", {"{ x | x in Auto }"}},
      {"MINIMIZE s1", {}},
  };
  for (const Case& test_case : cases) {
    ProtocolReply reply =
        handler.Handle(ParseCommandLine(test_case.line), test_case.payload);
    EXPECT_EQ(reply.text.rfind("ERR", 0), 0u)
        << "'" << test_case.line << "' got: " << reply.text;
    EXPECT_EQ(reply.text.substr(reply.text.size() - 2), ".\n");
    EXPECT_FALSE(reply.close);
  }
  // A binary verb with the wrong payload arity is an ERR, not a hang.
  ProtocolReply reply = handler.Handle(ParseCommandLine("CONTAIN " + *sid),
                                       {"{ x | x in Auto }"});
  EXPECT_EQ(reply.text.rfind("ERR", 0), 0u) << reply.text;
}

// ---- TCP-layer framing abuse ------------------------------------------

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

bool SendString(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RecvAll(int fd) {
  std::string all;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(got));
  }
  return all;
}

/// Runs against both transports: framing abuse must be handled
/// identically by the blocking reader and the epoll state machine.
class TcpFramingTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    service_ = std::make_unique<OocqService>();
    OOCQ_ASSERT_OK(service_->CreateSession(kVehicleRentalSchema).status());
    server_ = oocq::testing::MakeTransport(GetParam(), service_.get());
    OOCQ_ASSERT_OK(server_->Start());
  }
  void TearDown() override {
    server_->Stop();
    server_.reset();
    service_.reset();
  }

  std::unique_ptr<OocqService> service_;
  std::unique_ptr<Transport> server_;
};

TEST_P(TcpFramingTest, OversizedLineDropsConnectionButNotServer) {
  int fd = ConnectTo(server_->port());
  // > 1 MiB without a newline: the reader must give up, not buffer
  // forever.
  const std::string huge((1 << 20) + 4096, 'x');
  (void)SendString(fd, huge);  // server may drop mid-send; both are fine
  std::string reply = RecvAll(fd);  // connection closes with no reply
  EXPECT_TRUE(reply.empty()) << reply;
  ::close(fd);

  // The server is still healthy for the next client.
  int fd2 = ConnectTo(server_->port());
  ASSERT_TRUE(SendString(fd2, "PING\nQUIT\n"));
  std::string ok = RecvAll(fd2);
  EXPECT_NE(ok.find("OK"), std::string::npos) << ok;
  ::close(fd2);
}

TEST_P(TcpFramingTest, MissingPayloadTerminatorIsCleanDisconnect) {
  int fd = ConnectTo(server_->port());
  // CONTAIN opens a payload frame; the client dies before sending ".".
  ASSERT_TRUE(SendString(fd, "CONTAIN s1\n{ x | x in Auto }\n"));
  ::shutdown(fd, SHUT_WR);
  std::string reply = RecvAll(fd);
  EXPECT_TRUE(reply.empty()) << reply;  // no reply for a half frame
  ::close(fd);

  int fd2 = ConnectTo(server_->port());
  ASSERT_TRUE(SendString(fd2, "PING\nQUIT\n"));
  EXPECT_NE(RecvAll(fd2).find("OK"), std::string::npos);
  ::close(fd2);
}

TEST_P(TcpFramingTest, DotStuffedPayloadLinesAreUnstuffed) {
  int fd = ConnectTo(server_->port());
  // A payload line starting with "." must be sent dot-stuffed ("..");
  // the server unstuffs it before parsing. "." alone still terminates.
  ASSERT_TRUE(SendString(fd, "SAT s1\n..invalid on purpose\n.\nQUIT\n"));
  std::string reply = RecvAll(fd);
  // The unstuffed payload ".invalid on purpose" reaches the parser and
  // fails as a query — an ERR reply, not a framing error.
  EXPECT_NE(reply.find("ERR"), std::string::npos) << reply;
  EXPECT_NE(reply.find("OK"), std::string::npos) << reply;  // the QUIT
  ::close(fd);
}

INSTANTIATE_TEST_SUITE_P(Transports, TcpFramingTest,
                         ::testing::ValuesIn(oocq::testing::kTransportNames),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace oocq::server
