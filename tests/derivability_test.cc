// Unit tests for the §3.1 derivability and non-contradiction relations.

#include <gtest/gtest.h>

#include "core/derivability.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class DerivabilityTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Der {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: D; S: {D}; }
})");

  QueryAnalysis Analyze(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    StatusOr<QueryAnalysis> analysis = QueryAnalysis::Create(schema_, query);
    EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
    return *std::move(analysis);
  }
};

TEST_F(DerivabilityTest, PreconditionsChecked) {
  // Non-terminal query.
  ConjunctiveQuery non_terminal = MustParseQuery(schema_, "{ x | x in D }");
  EXPECT_EQ(QueryAnalysis::Create(schema_, non_terminal).status().code(),
            StatusCode::kFailedPrecondition);
  // Unsatisfiable query.
  ConjunctiveQuery unsat =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in F & x = y) }");
  EXPECT_EQ(QueryAnalysis::Create(schema_, unsat).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DerivabilityTest, DerivesRangeIsSyntactic) {
  QueryAnalysis q = Analyze("{ x | x in E }");
  EXPECT_TRUE(q.DerivesRange(0, schema_.FindClass("E").value()));
  // Membership in a superclass is true semantically but NOT derivable:
  // the atom 'x in D' is not in Q (the paper's definition is syntactic).
  EXPECT_FALSE(q.DerivesRange(0, schema_.FindClass("D").value()));
}

TEST_F(DerivabilityTest, DerivesEqualityReflexive) {
  QueryAnalysis q = Analyze("{ x | x in C }");
  EXPECT_TRUE(q.DerivesEquality(Term::Var(0), Term::Var(0)));
}

TEST_F(DerivabilityTest, DerivesEqualityThroughChain) {
  QueryAnalysis q = Analyze(
      "{ x | exists y exists z (x in E & y in E & z in E & x = y & "
      "y = z) }");
  EXPECT_TRUE(q.DerivesEquality(Term::Var(0), Term::Var(2)));
}

TEST_F(DerivabilityTest, DistinctVariablesNotDerivablyEqual) {
  QueryAnalysis q = Analyze("{ x | exists y (x in E & y in E) }");
  EXPECT_FALSE(q.DerivesEquality(Term::Var(0), Term::Var(1)));
}

TEST_F(DerivabilityTest, DerivesEqualityWithAttributeTerm) {
  QueryAnalysis q = Analyze(
      "{ x | exists u (x in C & u in E & u = x.A) }");
  EXPECT_TRUE(q.DerivesEquality(Term::Var(1), Term::Attr(0, "A")));
  EXPECT_TRUE(q.DerivesEquality(Term::Attr(0, "A"), Term::Var(1)));
  EXPECT_FALSE(q.DerivesEquality(Term::Var(1), Term::Attr(0, "B")));
}

TEST_F(DerivabilityTest, DerivesEqualityThroughEquatedOwners) {
  // Example 3.1's key step: y in [x] and y.A an object term makes
  // z = x.A derivable even though only z = y.A is written.
  QueryAnalysis q = Analyze(
      "{ x | exists y exists z (x in C & y in C & z in E & z = y.A & "
      "x = y) }");
  EXPECT_TRUE(q.DerivesEquality(Term::Var(2), Term::Attr(0, "A")));
}

TEST_F(DerivabilityTest, AbsentAttributeTermNotDerivable) {
  QueryAnalysis q = Analyze("{ x | exists u (x in C & u in E) }");
  EXPECT_FALSE(q.DerivesEquality(Term::Var(1), Term::Attr(0, "A")));
}

TEST_F(DerivabilityTest, DerivesMembership) {
  QueryAnalysis q = Analyze(
      "{ x | exists u (x in C & u in E & u in x.S) }");
  EXPECT_TRUE(q.DerivesMembership(1, 0, "S"));
  EXPECT_FALSE(q.DerivesMembership(0, 0, "S"));
  EXPECT_FALSE(q.DerivesMembership(1, 0, "A"));
}

TEST_F(DerivabilityTest, DerivesMembershipThroughEquivalence) {
  QueryAnalysis q = Analyze(
      "{ x | exists u exists v (x in C & u in E & v in E & u = v & "
      "u in x.S) }");
  EXPECT_TRUE(q.DerivesMembership(2, 0, "S"));
}

TEST_F(DerivabilityTest, NotContradictsInequalityBasic) {
  QueryAnalysis q = Analyze(
      "{ x | exists y (x in E & y in E) }");
  EXPECT_TRUE(q.NotContradictsInequality(Term::Var(0), Term::Var(1)));
  // x != x is contradicted.
  EXPECT_FALSE(q.NotContradictsInequality(Term::Var(0), Term::Var(0)));
}

TEST_F(DerivabilityTest, EquatedVariablesContradictInequality) {
  QueryAnalysis q = Analyze(
      "{ x | exists y (x in E & y in E & x = y) }");
  EXPECT_FALSE(q.NotContradictsInequality(Term::Var(0), Term::Var(1)));
}

TEST_F(DerivabilityTest, UnmentionedAttributeContradictsInequality) {
  // x.A is not an object term of Q: its value could be null, so the
  // inequality cannot be guaranteed true.
  QueryAnalysis q = Analyze("{ x | exists y (x in C & y in E) }");
  EXPECT_FALSE(q.NotContradictsInequality(Term::Attr(0, "A"), Term::Var(1)));
}

TEST_F(DerivabilityTest, MentionedAttributeSupportsInequality) {
  QueryAnalysis q = Analyze(
      "{ x | exists u exists y (x in C & u in E & y in E & u = x.A) }");
  EXPECT_TRUE(q.NotContradictsInequality(Term::Attr(0, "A"), Term::Var(2)));
}

TEST_F(DerivabilityTest, NotContradictsNonMembershipRequiresSetTerm) {
  // Example 3.3: without y.A mentioned in Q, x notin y.A is contradicted
  // (some state gives y.A = null or x inside).
  QueryAnalysis without = Analyze("{ x | exists y (x in E & y in C) }");
  EXPECT_FALSE(without.NotContradictsNonMembership(0, 1, "S"));

  QueryAnalysis with_set = Analyze(
      "{ x | exists y exists u (x in E & y in C & u in E & u in y.S) }");
  EXPECT_TRUE(with_set.NotContradictsNonMembership(0, 1, "S"));
}

TEST_F(DerivabilityTest, DerivableMembershipContradictsNonMembership) {
  QueryAnalysis q = Analyze(
      "{ x | exists y (x in E & y in C & x in y.S) }");
  EXPECT_FALSE(q.NotContradictsNonMembership(0, 1, "S"));
}

TEST_F(DerivabilityTest, HasSetTermThroughEquivalence) {
  QueryAnalysis q = Analyze(
      "{ x | exists y exists z exists u (x in E & y in C & z in C & "
      "u in E & y = z & u in z.S) }");
  EXPECT_TRUE(q.HasSetTerm(1, "S"));  // y ~ z and z.S is a set term.
}

}  // namespace
}  // namespace oocq
