// Unit tests for the object store: object creation, attribute slots,
// primitive interning, extents, and legal-state validation.

#include <gtest/gtest.h>

#include "state/state.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseSchema;

class StateTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);
  State state_{&schema_};

  ClassId Cls(const char* name) { return schema_.FindClass(name).value(); }
};

TEST_F(StateTest, AddObjectInitializesAttributesToNull) {
  StatusOr<Oid> auto_oid = state_.AddObject(Cls("Auto"));
  OOCQ_ASSERT_OK(auto_oid.status());
  const Value* veh_id = state_.GetAttribute(*auto_oid, "VehId");
  ASSERT_NE(veh_id, nullptr);
  EXPECT_TRUE(veh_id->is_null());
  // Inherited and own attributes both exist.
  EXPECT_NE(state_.GetAttribute(*auto_oid, "Doors"), nullptr);
  // Attributes of other classes do not.
  EXPECT_EQ(state_.GetAttribute(*auto_oid, "Rate"), nullptr);
}

TEST_F(StateTest, AddObjectRejectsNonTerminal) {
  EXPECT_EQ(state_.AddObject(Cls("Vehicle")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(state_.AddObject(Cls("Client")).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateTest, AddObjectRejectsBuiltin) {
  EXPECT_EQ(state_.AddObject(kIntClassId).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateTest, SetAttributeUnknownNameRejected) {
  Oid oid = *state_.AddObject(Cls("Auto"));
  EXPECT_EQ(state_.SetAttribute(oid, "Nope", Value::Null()).code(),
            StatusCode::kNotFound);
}

TEST_F(StateTest, PrimitiveInterningIsCanonical) {
  Oid a = state_.InternInt(42);
  Oid b = state_.InternInt(42);
  Oid c = state_.InternInt(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(state_.class_of(a), kIntClassId);

  Oid s1 = state_.InternString("hi");
  Oid s2 = state_.InternString("hi");
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(state_.class_of(s1), kStringClassId);

  Oid r = state_.InternReal(2.5);
  EXPECT_EQ(state_.class_of(r), kRealClassId);
}

TEST_F(StateTest, ExtentFollowsHierarchy) {
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  Oid auto2 = *state_.AddObject(Cls("Auto"));
  Oid truck = *state_.AddObject(Cls("Truck"));
  *state_.AddObject(Cls("Discount"));

  std::vector<Oid> vehicles = state_.Extent(Cls("Vehicle"));
  EXPECT_EQ(vehicles, (std::vector<Oid>{auto1, auto2, truck}));
  EXPECT_EQ(state_.Extent(Cls("Auto")), (std::vector<Oid>{auto1, auto2}));
  EXPECT_EQ(state_.Extent(Cls("Client")).size(), 1u);
}

TEST_F(StateTest, TerminalPartitioningByConstruction) {
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  // An object belongs to exactly one terminal class.
  EXPECT_TRUE(state_.IsMember(auto1, Cls("Auto")));
  EXPECT_TRUE(state_.IsMember(auto1, Cls("Vehicle")));
  EXPECT_FALSE(state_.IsMember(auto1, Cls("Truck")));
  EXPECT_FALSE(state_.IsMember(auto1, Cls("Client")));
}

TEST_F(StateTest, ValidateAcceptsWellTypedState) {
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  Oid discount = *state_.AddObject(Cls("Discount"));
  OOCQ_ASSERT_OK(state_.SetAttribute(auto1, "VehId",
                                     Value::Ref(state_.InternString("A1"))));
  OOCQ_ASSERT_OK(
      state_.SetAttribute(discount, "VehRented", Value::Set({auto1})));
  OOCQ_EXPECT_OK(state_.Validate());
}

TEST_F(StateTest, ValidateRejectsWrongRefClass) {
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  // VehId must be a String, not an Int.
  OOCQ_ASSERT_OK(
      state_.SetAttribute(auto1, "VehId", Value::Ref(state_.InternInt(7))));
  EXPECT_EQ(state_.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(StateTest, ValidateRejectsSetInObjectSlot) {
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  OOCQ_ASSERT_OK(state_.SetAttribute(auto1, "VehId", Value::Set({})));
  EXPECT_EQ(state_.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(StateTest, ValidateRejectsRefInSetSlot) {
  Oid discount = *state_.AddObject(Cls("Discount"));
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  OOCQ_ASSERT_OK(
      state_.SetAttribute(discount, "VehRented", Value::Ref(auto1)));
  EXPECT_EQ(state_.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(StateTest, ValidateRejectsSetMemberOutsideElementClass) {
  // Discount.VehRented is refined to {Auto}: a Truck member is illegal.
  Oid discount = *state_.AddObject(Cls("Discount"));
  Oid truck = *state_.AddObject(Cls("Truck"));
  OOCQ_ASSERT_OK(
      state_.SetAttribute(discount, "VehRented", Value::Set({truck})));
  EXPECT_EQ(state_.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(StateTest, ValidateAcceptsRefinedSetMember) {
  // Regular clients may rent any vehicle.
  Oid regular = *state_.AddObject(Cls("Regular"));
  Oid truck = *state_.AddObject(Cls("Truck"));
  OOCQ_ASSERT_OK(
      state_.SetAttribute(regular, "VehRented", Value::Set({truck})));
  OOCQ_EXPECT_OK(state_.Validate());
}

TEST_F(StateTest, DebugStrings) {
  Oid auto1 = *state_.AddObject(Cls("Auto"));
  EXPECT_EQ(state_.DebugString(auto1), "Auto#" + std::to_string(auto1));
  EXPECT_EQ(state_.DebugString(state_.InternInt(5)), "Int(5)");
  EXPECT_EQ(state_.DebugString(state_.InternString("hi")),
            "String(\"hi\")");
  EXPECT_EQ(state_.DebugString(9999), "<invalid oid>");
}

TEST(ValueTest, SetOperations) {
  Value set = Value::Set({3, 1, 2, 2});
  EXPECT_EQ(set.set(), (std::vector<Oid>{1, 2, 3}));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_FALSE(set.Contains(5));
  set.Insert(5);
  set.Insert(5);
  EXPECT_EQ(set.set(), (std::vector<Oid>{1, 2, 3, 5}));
  EXPECT_FALSE(Value::Null().Contains(1));
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Ref(7).ref(), 7u);
}

}  // namespace
}  // namespace oocq
