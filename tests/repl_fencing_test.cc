// Split-brain fencing end to end (docs/replication.md#fencing): the
// replication term is durable and ratchets forward; a primary that
// observes a higher term — via REPL DEMOTE, the SUBSCRIBE term
// handshake, or a shipped record — fences itself; and the dueling-
// promotion scenario (two followers both self-promote during a
// partition) converges to exactly one writable primary after the heal,
// with zero acked-write loss and the stale primary's post-partition
// writes expunged everywhere.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "persist/catalog.h"
#include "replicate/fence.h"
#include "replicate/follower.h"
#include "replicate/peer.h"
#include "server/event_server.h"
#include "server/service.h"
#include "support/failpoint.h"
#include "support/file.h"
#include "test_util.h"

namespace oocq::server {
namespace {

using ::oocq::replicate::DialPeer;
using ::oocq::replicate::FieldUint;
using ::oocq::replicate::Follower;
using ::oocq::replicate::FollowerOptions;
using ::oocq::replicate::PeerStatus;
using ::oocq::replicate::PickWinner;
using ::oocq::replicate::ProbePeer;
using ::oocq::replicate::ReadWireReply;
using ::oocq::replicate::ResolveSingleWriter;
using ::oocq::replicate::SendAll;
using ::oocq::replicate::SplitHostPort;
using ::oocq::replicate::WireReply;
using ::oocq::testing::kVehicleRentalSchema;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "oocq_fencing_" + name;
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }
  EXPECT_TRUE(MakeDirs(dir).ok());
  return dir;
}

std::shared_ptr<persist::DurableCatalog> OpenCatalog(const std::string& dir) {
  persist::DurableCatalogOptions options;
  options.data_dir = dir;
  options.snapshot_interval_s = 0;
  StatusOr<std::unique_ptr<persist::DurableCatalog>> opened =
      persist::DurableCatalog::Open(options);
  OOCQ_EXPECT_OK(opened.status());
  return opened.ok() ? std::shared_ptr<persist::DurableCatalog>(
                           *std::move(opened))
                     : nullptr;
}

bool Eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

Request ContainNamed(const std::string& sid, const std::string& name) {
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = "@" + name;
  request.query2 = "{ x | x in Vehicle }";
  return request;
}

// ---- Term durability --------------------------------------------------

TEST(ReplTermTest, TermPersistsAcrossReopenAndNeverMovesBackwards) {
  std::string dir = FreshDir("term");
  {
    std::shared_ptr<persist::DurableCatalog> catalog = OpenCatalog(dir);
    ASSERT_NE(catalog, nullptr);
    EXPECT_EQ(catalog->term(), 1u);  // fresh catalogs start at term 1
    OOCQ_EXPECT_OK(catalog->SetTerm(5));
    OOCQ_EXPECT_OK(catalog->SetTerm(5));  // idempotent
    // Terms only ratchet forward — a rollback would let a fenced
    // primary re-acquire write authority it already lost.
    EXPECT_EQ(catalog->SetTerm(3).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(catalog->term(), 5u);
  }
  {
    std::shared_ptr<persist::DurableCatalog> catalog = OpenCatalog(dir);
    ASSERT_NE(catalog, nullptr);
    EXPECT_EQ(catalog->term(), 5u);  // survived the restart
  }
  // A corrupt TERM file degrades to term 1 with a recovery note, same
  // contract as every other recovery problem (docs/persistence.md).
  OOCQ_EXPECT_OK(WriteFileDurable(dir + "/TERM", "not a number\n"));
  {
    std::shared_ptr<persist::DurableCatalog> catalog = OpenCatalog(dir);
    ASSERT_NE(catalog, nullptr);
    EXPECT_EQ(catalog->term(), 1u);
  }
}

// ---- Fencing at the service layer -------------------------------------

TEST(ReplFencingTest, DemoteFencesPrimaryAndRejectsLowerTermRecords) {
  std::string dir = FreshDir("demote");
  ServiceOptions options;
  options.catalog = OpenCatalog(dir);
  ASSERT_NE(options.catalog, nullptr);
  OocqService service(options);
  ASSERT_FALSE(service.read_only());
  EXPECT_EQ(service.term(), 1u);

  uint64_t handler_term = 0;
  std::string handler_primary;
  service.SetDemotionHandler(
      [&](uint64_t term, const std::string& new_primary) {
        handler_term = term;
        handler_primary = new_primary;
      });

  // A stale demotion is refused outright; a tied one must name the
  // winner (otherwise dueling primaries could demote each other and
  // leave no writer at all).
  EXPECT_EQ(service.Demote(1, "").code(), StatusCode::kFailedPrecondition);
  OOCQ_ASSERT_OK(service.Demote(2, "127.0.0.1:7799"));
  EXPECT_TRUE(service.fenced());
  EXPECT_TRUE(service.read_only());
  EXPECT_EQ(service.term(), 2u);
  EXPECT_EQ(options.catalog->term(), 2u);  // adopted durably
  EXPECT_EQ(handler_term, 2u);
  EXPECT_EQ(handler_primary, "127.0.0.1:7799");

  // Fenced mutations answer a routable FAILED_PRECONDITION naming the
  // term, not the generic readonly refusal.
  Status refused = service.CreateSession(kVehicleRentalSchema).status();
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.ToString().find("fenced term=2"), std::string::npos);

  // Replicated records carry their shipper's term: lower than ours is a
  // forked history and must never enter this WAL.
  persist::Record record;
  record.type = persist::RecordType::kDropSession;
  record.session_id = "s0";
  EXPECT_EQ(service.ApplyReplicated(record, 1).code(),
            StatusCode::kFailedPrecondition);
  OOCQ_EXPECT_OK(service.ApplyReplicated(record, 2));  // current term is fine

  // Re-promotion claims a fresh, higher term and clears the fence.
  OOCQ_ASSERT_OK(service.Promote(10));
  EXPECT_FALSE(service.fenced());
  EXPECT_FALSE(service.read_only());
  EXPECT_EQ(service.term(), 10u);
  // A tied demotion that does name a successor fences a primary.
  OOCQ_ASSERT_OK(service.Demote(10, "127.0.0.1:7799"));
  EXPECT_TRUE(service.fenced());
}

TEST(ReplFencingTest, SubscribeTermHandshakeFencesStalePrimary) {
  // A healed stale primary fences itself the moment a follower that is
  // ahead of it polls it — no router or operator in the loop.
  std::string dir = FreshDir("handshake");
  ServiceOptions options;
  options.catalog = OpenCatalog(dir);
  ASSERT_NE(options.catalog, nullptr);
  OocqService service(options);
  EventServerOptions transport_options;
  transport_options.dispatch_threads = 2;
  EventServer transport(&service, transport_options);
  OOCQ_ASSERT_OK(transport.Start());

  int fd = DialPeer("127.0.0.1", transport.port(), 2000);
  ASSERT_GE(fd, 0);
  std::string buffer;
  WireReply reply;
  ASSERT_TRUE(SendAll(fd, "HELLO 1\n"));
  OOCQ_ASSERT_OK(ReadWireReply(fd, &buffer, &reply));
  EXPECT_NE(reply.status.find("fencing"), std::string::npos);  // caps
  EXPECT_EQ(FieldUint(reply.status, "term"), 1u);

  ASSERT_TRUE(SendAll(fd, "REPL SUBSCRIBE 1 0 wait_ms=0 term=7\n"));
  OOCQ_ASSERT_OK(ReadWireReply(fd, &buffer, &reply));
  EXPECT_EQ(reply.status.rfind("ERR FAILED_PRECONDITION", 0), 0u);
  EXPECT_NE(reply.status.find("fenced term=7"), std::string::npos);
  ASSERT_TRUE(Eventually([&] { return service.fenced(); }));
  EXPECT_EQ(service.term(), 7u);

  // The fence is visible to probes: HEALTH carries role/readonly/
  // fenced/term, which is exactly what the router's sweep reads.
  ASSERT_TRUE(SendAll(fd, "HEALTH\n"));
  OOCQ_ASSERT_OK(ReadWireReply(fd, &buffer, &reply));
  EXPECT_EQ(FieldUint(reply.status, "fenced"), 1u);
  EXPECT_EQ(FieldUint(reply.status, "term"), 7u);
  (void)SendAll(fd, "QUIT\n");
  ::close(fd);
  transport.Stop();
}

// ---- The deterministic tie-break --------------------------------------

TEST(ReplFencingTest, PickWinnerOrdersByTermThenAddress) {
  std::vector<PeerStatus> peers(4);
  peers[0].address = "127.0.0.1:9001";
  peers[0].reachable = true;
  peers[0].readonly = false;
  peers[0].term = 2;
  peers[1].address = "127.0.0.1:9002";  // tied term: higher address wins
  peers[1].reachable = true;
  peers[1].readonly = false;
  peers[1].term = 2;
  peers[2].address = "127.0.0.1:9009";  // higher address but lower term
  peers[2].reachable = true;
  peers[2].readonly = false;
  peers[2].term = 1;
  peers[3].address = "127.0.0.1:9999";  // highest term but not writable
  peers[3].reachable = true;
  peers[3].readonly = true;
  peers[3].term = 9;
  EXPECT_EQ(PickWinner(peers), "127.0.0.1:9002");
  peers[1].reachable = false;  // unreachable peers never win
  EXPECT_EQ(PickWinner(peers), "127.0.0.1:9001");
  EXPECT_EQ(PickWinner({}), "");
}

// ---- Dueling promotions end to end ------------------------------------

TEST(ReplFencingTest, DuelingPromotionsConvergeToSingleWriter) {
  Failpoints::Reset();
  // Follower services first: the first-constructed service owns the
  // process-wide metrics scope and must outlive the others.
  std::string dir_a = FreshDir("duel_a");
  ServiceOptions options_a;
  options_a.catalog = OpenCatalog(dir_a);
  ASSERT_NE(options_a.catalog, nullptr);
  options_a.read_only = true;
  OocqService service_a(options_a);

  std::string dir_b = FreshDir("duel_b");
  ServiceOptions options_b;
  options_b.catalog = OpenCatalog(dir_b);
  ASSERT_NE(options_b.catalog, nullptr);
  options_b.read_only = true;
  OocqService service_b(options_b);

  std::string dir_p = FreshDir("duel_p");
  ServiceOptions options_p;
  options_p.catalog = OpenCatalog(dir_p);
  ASSERT_NE(options_p.catalog, nullptr);
  OocqService service_p(options_p);

  // Every node sits behind a real transport so the sweep can probe and
  // demote over the wire, exactly as oocq_route's prober would.
  EventServerOptions transport_options;
  transport_options.dispatch_threads = 2;
  EventServer transport_a(&service_a, transport_options);
  EventServer transport_b(&service_b, transport_options);
  EventServer transport_p(&service_p, transport_options);
  OOCQ_ASSERT_OK(transport_a.Start());
  OOCQ_ASSERT_OK(transport_b.Start());
  OOCQ_ASSERT_OK(transport_p.Start());
  const std::string addr_a = "127.0.0.1:" + std::to_string(transport_a.port());
  const std::string addr_b = "127.0.0.1:" + std::to_string(transport_b.port());
  const std::string addr_p = "127.0.0.1:" + std::to_string(transport_p.port());

  // Demoted nodes rejoin as followers of the named winner — the same
  // wiring oocq_serve installs, reduced to its essentials.
  std::mutex rejoin_mu;
  std::vector<std::unique_ptr<Follower>> rejoined;
  auto install_rejoin = [&](OocqService* service) {
    service->SetDemotionHandler(
        [&rejoin_mu, &rejoined, service](uint64_t,
                                         const std::string& new_primary) {
          std::string host;
          uint16_t port = 0;
          if (!SplitHostPort(new_primary, &host, &port)) return;
          FollowerOptions options;
          options.host = host;
          options.port = port;
          options.poll_wait_ms = 100;
          options.backoff_ms = 20;
          options.backoff_cap_ms = 50;
          auto follower = std::make_unique<Follower>(service, options);
          follower->Start();
          std::lock_guard<std::mutex> lock(rejoin_mu);
          rejoined.push_back(std::move(follower));
        });
  };
  install_rejoin(&service_a);
  install_rejoin(&service_b);
  install_rejoin(&service_p);

  // Seed the primary and let both followers converge; the seeded write
  // is "acked" — it must survive everything that follows.
  StatusOr<std::string> sid = service_p.CreateSession(kVehicleRentalSchema);
  OOCQ_ASSERT_OK(sid.status());
  OOCQ_ASSERT_OK(service_p.DefineQuery(*sid, "acked", "{ x | x in Auto }"));

  FollowerOptions tail_options;
  tail_options.port = transport_p.port();
  tail_options.poll_wait_ms = 100;
  tail_options.backoff_ms = 20;
  tail_options.backoff_cap_ms = 50;
  tail_options.auto_promote_after_ms = 300;
  auto tail_a = std::make_unique<Follower>(&service_a, tail_options);
  auto tail_b = std::make_unique<Follower>(&service_b, tail_options);
  tail_a->Start();
  tail_b->Start();
  ASSERT_TRUE(Eventually([&] {
    return service_a.session_count() == 1 && service_b.session_count() == 1 &&
           tail_a->lag_records() == 0 && tail_b->lag_records() == 0;
  }));

  // ---- Partition: black-hole all traffic to the primary ----
  OOCQ_ASSERT_OK(Failpoints::Configure("net/partition:" + addr_p + "=error"));
  // Both followers lose contact and, past the threshold, both promote:
  // the duel. Each claims term 2 independently.
  ASSERT_TRUE(Eventually(
      [&] { return !service_a.read_only() && !service_b.read_only(); }));
  EXPECT_EQ(service_a.term(), 2u);
  EXPECT_EQ(service_b.term(), 2u);
  tail_a->Stop();
  tail_b->Stop();
  tail_a.reset();
  tail_b.reset();

  // The partitioned primary still thinks it is one; a write it accepts
  // now is on a forked history and must be expunged by the heal.
  OOCQ_ASSERT_OK(service_p.DefineQuery(*sid, "stale", "{ x | x in Truck }"));

  // ---- Heal, then sweep ----
  Failpoints::Reset();
  StatusOr<std::string> winner = ResolveSingleWriter({addr_p, addr_a, addr_b},
                                                     2000);
  OOCQ_ASSERT_OK(winner.status());
  // Deterministic duel outcome: both dueling primaries are at term 2,
  // so the higher address wins, and the old term-1 primary can never.
  const std::string expected =
      transport_a.port() > transport_b.port() ? addr_a : addr_b;
  EXPECT_EQ(*winner, expected);
  OocqService& winner_service =
      *winner == addr_a ? service_a : service_b;
  OocqService& loser_service = *winner == addr_a ? service_b : service_a;

  // Exactly one backend accepts mutations; everyone else is fenced.
  ASSERT_TRUE(Eventually([&] {
    int writable = 0;
    for (const std::string& address : {addr_p, addr_a, addr_b}) {
      PeerStatus status = ProbePeer(address, 2000);
      if (status.reachable && !status.readonly) ++writable;
    }
    return writable == 1;
  }));
  EXPECT_FALSE(winner_service.read_only());
  EXPECT_TRUE(loser_service.fenced());
  EXPECT_TRUE(service_p.fenced());
  EXPECT_EQ(service_p.term(), 2u);  // adopted the winner's term durably

  // The loser and the old primary rejoin as followers of the winner and
  // reconverge: the acked write is everywhere, the forked write nowhere.
  OOCQ_ASSERT_OK(
      winner_service.DefineQuery(*sid, "healed", "{ x | x in Trailer }"));
  ASSERT_TRUE(Eventually([&] {
    Response at_loser = loser_service.Execute(ContainNamed(*sid, "healed"));
    Response at_old = service_p.Execute(ContainNamed(*sid, "healed"));
    return at_loser.status.ok() && at_old.status.ok();
  }));
  for (OocqService* node : {&winner_service, &loser_service, &service_p}) {
    Response acked = node->Execute(ContainNamed(*sid, "acked"));
    OOCQ_EXPECT_OK(acked.status);
    EXPECT_TRUE(acked.verdict);  // identical verdicts on every node
    // The stale primary's post-partition define never reached any
    // surviving history: resync rebuilt every catalog from the winner.
    Response stale = node->Execute(ContainNamed(*sid, "stale"));
    EXPECT_FALSE(stale.status.ok());
  }

  // Durable reconvergence: the old primary's term file carries the
  // winner's term, so a restart can never resurrect its write claim.
  EXPECT_EQ(options_p.catalog->term(), 2u);

  {
    std::lock_guard<std::mutex> lock(rejoin_mu);
    for (std::unique_ptr<Follower>& follower : rejoined) follower->Stop();
    rejoined.clear();
  }
  transport_a.Stop();
  transport_b.Stop();
  transport_p.Stop();
}

}  // namespace
}  // namespace oocq::server
