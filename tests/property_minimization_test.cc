// E5: randomized validation of the §4 minimization pipeline —
// equivalence preservation (symbolic and on states), idempotence,
// minimality (Cor 4.4), nonredundancy, and the Thm 4.2 uniqueness
// property for nonredundant unions.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/containment.h"
#include "core/expansion.h"
#include "core/minimization.h"
#include "core/satisfiability.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "random_query.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

const char* const kMinSchema = R"(
schema MinProp {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
  class C1 under C { }
  class C2 under C { B: E; }
})";

class MinimizationProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(kMinSchema);

  // A random positive (possibly non-terminal) well-formed query, or
  // nullopt if this draw is unusable.
  std::optional<ConjunctiveQuery> Draw(std::mt19937_64& rng) {
    RandomQueryParams params;
    params.terminal_only = false;
    params.max_vars = 4;
    ConjunctiveQuery query = GenerateRandomQuery(schema_, rng, params);
    if (!CheckWellFormed(schema_, query).ok()) return std::nullopt;
    return query;
  }
};

TEST_P(MinimizationProperty, MinimizedAnswersMatchOriginalOnStates) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 8; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng);
    if (!query.has_value()) continue;
    StatusOr<MinimizationReport> report =
        MinimizePositiveQuery(schema_, *query);
    if (!report.ok()) continue;

    for (uint64_t seed = 0; seed < 4; ++seed) {
      GeneratorParams gen;
      gen.seed = GetParam() * 57 + seed;
      gen.objects_per_class = 4;
      State state = GenerateRandomState(schema_, gen);
      std::vector<Oid> original = *Evaluate(state, *query);
      std::vector<Oid> minimized = *EvaluateUnion(state, report->minimized);
      EXPECT_EQ(original, minimized)
          << "minimization changed answers:\n  Q = "
          << QueryToString(schema_, *query) << "\n  M = "
          << UnionQueryToString(schema_, report->minimized);
    }
  }
}

TEST_P(MinimizationProperty, MinimizedEquivalentToExpansionSymbolically) {
  std::mt19937_64 rng(GetParam() + 3000);
  for (int round = 0; round < 5; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng);
    if (!query.has_value()) continue;
    StatusOr<MinimizationReport> report =
        MinimizePositiveQuery(schema_, *query);
    if (!report.ok()) continue;
    StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, *query);
    if (!expansion.ok()) continue;
    StatusOr<bool> equivalent =
        UnionEquivalent(schema_, report->minimized, *expansion);
    if (!equivalent.ok()) continue;
    EXPECT_TRUE(*equivalent) << QueryToString(schema_, *query);
  }
}

TEST_P(MinimizationProperty, EveryOutputDisjunctIsMinimalAndSatisfiable) {
  std::mt19937_64 rng(GetParam() + 6000);
  for (int round = 0; round < 6; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng);
    if (!query.has_value()) continue;
    StatusOr<MinimizationReport> report =
        MinimizePositiveQuery(schema_, *query);
    if (!report.ok()) continue;
    for (const ConjunctiveQuery& disjunct : report->minimized.disjuncts) {
      EXPECT_TRUE(CheckSatisfiable(schema_, disjunct).satisfiable);
      StatusOr<bool> minimal = IsMinimalTerminalPositive(schema_, disjunct);
      OOCQ_ASSERT_OK(minimal.status());
      EXPECT_TRUE(*minimal) << QueryToString(schema_, disjunct);
    }
  }
}

TEST_P(MinimizationProperty, OutputIsNonredundant) {
  std::mt19937_64 rng(GetParam() + 9000);
  for (int round = 0; round < 5; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng);
    if (!query.has_value()) continue;
    StatusOr<MinimizationReport> report =
        MinimizePositiveQuery(schema_, *query);
    if (!report.ok()) continue;
    const std::vector<ConjunctiveQuery>& disjuncts =
        report->minimized.disjuncts;
    for (size_t i = 0; i < disjuncts.size(); ++i) {
      for (size_t j = 0; j < disjuncts.size(); ++j) {
        if (i == j) continue;
        StatusOr<bool> contained =
            Contained(schema_, disjuncts[i], disjuncts[j]);
        OOCQ_ASSERT_OK(contained.status());
        EXPECT_FALSE(*contained)
            << "redundant disjunct survived minimization";
      }
    }
  }
}

TEST_P(MinimizationProperty, Theorem42UniquenessOfNonredundantUnions) {
  // Thm 4.2: two equivalent nonredundant unions pair up disjunct-by-
  // disjunct (unique partner, equal cardinality). Build a second
  // nonredundant union by shuffling the expansion before redundancy
  // removal; both results must pair up.
  std::mt19937_64 rng(GetParam() + 12000);
  for (int round = 0; round < 4; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng);
    if (!query.has_value()) continue;
    StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, *query);
    if (!expansion.ok() || expansion->disjuncts.size() < 2) continue;

    UnionQuery shuffled = *expansion;
    std::shuffle(shuffled.disjuncts.begin(), shuffled.disjuncts.end(), rng);

    StatusOr<UnionQuery> m = RemoveRedundantDisjuncts(schema_, *expansion);
    StatusOr<UnionQuery> n = RemoveRedundantDisjuncts(schema_, shuffled);
    OOCQ_ASSERT_OK(m.status());
    OOCQ_ASSERT_OK(n.status());

    ASSERT_EQ(m->disjuncts.size(), n->disjuncts.size());
    // Each disjunct of M has exactly one equivalent partner in N.
    for (const ConjunctiveQuery& qi : m->disjuncts) {
      int partners = 0;
      for (const ConjunctiveQuery& pj : n->disjuncts) {
        StatusOr<bool> equivalent = EquivalentQueries(schema_, qi, pj);
        OOCQ_ASSERT_OK(equivalent.status());
        if (*equivalent) ++partners;
      }
      EXPECT_EQ(partners, 1) << QueryToString(schema_, qi);
    }
  }
}

TEST_P(MinimizationProperty, Theorem45MinimalEquivalentsAreBijective) {
  // Thm 4.5: equivalent minimal terminal positive queries have the same
  // number of variables (every non-contradictory mapping between them is
  // bijective). Minimize two disjuncts; whenever equivalent, their sizes
  // must agree.
  std::mt19937_64 rng(GetParam() + 15000);
  for (int round = 0; round < 5; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng);
    if (!query.has_value()) continue;
    StatusOr<UnionQuery> expansion = ExpandToTerminalQueries(schema_, *query);
    if (!expansion.ok()) continue;
    std::vector<ConjunctiveQuery> minimal;
    for (const ConjunctiveQuery& disjunct : expansion->disjuncts) {
      StatusOr<ConjunctiveQuery> m = MinimizeTerminalPositive(schema_, disjunct);
      if (m.ok()) minimal.push_back(*std::move(m));
    }
    for (size_t i = 0; i < minimal.size(); ++i) {
      for (size_t j = i + 1; j < minimal.size(); ++j) {
        StatusOr<bool> equivalent =
            EquivalentQueries(schema_, minimal[i], minimal[j]);
        OOCQ_ASSERT_OK(equivalent.status());
        if (*equivalent) {
          EXPECT_EQ(minimal[i].num_vars(), minimal[j].num_vars())
              << QueryToString(schema_, minimal[i]) << " vs "
              << QueryToString(schema_, minimal[j]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizationProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace oocq
