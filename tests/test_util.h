#ifndef OOCQ_TESTS_TEST_UTIL_H_
#define OOCQ_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "parser/parser.h"
#include "query/query.h"
#include "schema/schema.h"
#include "schema/schema_builder.h"
#include "support/status.h"

namespace oocq::testing {

/// gtest helpers for Status / StatusOr.
#define OOCQ_ASSERT_OK(expr)                                \
  do {                                                      \
    const auto& oocq_assert_status_ = (expr);               \
    ASSERT_TRUE(oocq_assert_status_.ok())                   \
        << oocq_assert_status_.ToString();                  \
  } while (false)

#define OOCQ_EXPECT_OK(expr)                                \
  do {                                                      \
    const auto& oocq_expect_status_ = (expr);               \
    EXPECT_TRUE(oocq_expect_status_.ok())                   \
        << oocq_expect_status_.ToString();                  \
  } while (false)

/// Parses a schema, aborting the test on error.
inline Schema MustParseSchema(std::string_view text) {
  StatusOr<Schema> schema = ParseSchema(text);
  if (!schema.ok()) {
    ADD_FAILURE() << "schema parse failed: " << schema.status().ToString();
    return Schema(SchemaBuilder().Build().value());
  }
  return *std::move(schema);
}

/// Parses a query, aborting the test on error.
inline ConjunctiveQuery MustParseQuery(const Schema& schema,
                                       std::string_view text) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(schema, text);
  EXPECT_TRUE(query.ok()) << "query parse failed: "
                          << query.status().ToString() << "\n  " << text;
  return query.ok() ? *std::move(query) : ConjunctiveQuery();
}

/// The vehicle rental schema of Example 1.1 / 2.1. Discount clients may
/// only rent automobiles: Discount refines VehRented to {Auto}.
inline const char* kVehicleRentalSchema = R"(
schema VehicleRental {
  class Vehicle { VehId: String; Weight: Real; }
  class Auto under Vehicle { Doors: Int; }
  class Trailer under Vehicle { Axles: Int; }
  class Truck under Vehicle { Payload: Real; }
  class Client { Name: String; VehRented: {Vehicle}; Deposit: Real; }
  class Regular under Client { }
  class Discount under Client { Rate: Real; VehRented: {Auto}; }
}
)";

/// The partitioned schema of Example 1.2 / 4.1: T1 lacks attribute B; T3
/// refines A to {I}, which makes 's in x.A' with s in H unsatisfiable.
inline const char* kPartitionSchema = R"(
schema Partition {
  class G { }
  class H under G { }
  class I under G { }
  class N1 { A: {G}; }
  class T1 under N1 { }
  class T2 under N1 { B: G; }
  class T3 under N1 { B: G; A: {I}; }
}
)";

/// The schema of Example 1.3: C.A has type D; T1 and T2 are unrelated
/// terminal subclasses of D.
inline const char* kImpliedInequalitySchema = R"(
schema ImpliedInequality {
  class D { }
  class T1 under D { }
  class T2 under D { }
  class C { A: D; }
}
)";

/// The schema of Example 3.1: C.A of type D (object), C.B of type {D}.
inline const char* kExample31Schema = R"(
schema Example31 {
  class D { }
  class C { A: D; B: {D}; }
}
)";

/// The schema of Example 3.2: a single terminal class C.
inline const char* kExample32Schema = R"(
schema Example32 {
  class C { }
}
)";

/// The schema of Example 3.3: T2.A is a set of T1.
inline const char* kExample33Schema = R"(
schema Example33 {
  class T1 { }
  class T2 { A: {T1}; }
}
)";

}  // namespace oocq::testing

#endif  // OOCQ_TESTS_TEST_UTIL_H_
