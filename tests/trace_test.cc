// The span tracer (support/trace.h): RAII nesting, thread attribution,
// Chrome-trace well-formedness, and the determinism contract — the span
// *structure* of a positive-pipeline run is identical at 1, 2 and 8
// threads. Labeled `concurrency` so a TSan build exercises the
// thread-local buffer handoff (ctest -L concurrency).

#include "support/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_options.h"
#include "core/optimizer.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::kVehicleRentalSchema;
using ::oocq::testing::MustParseSchema;

const TraceEvent* FindByName(const TraceLog& log, const std::string& name) {
  for (const TraceEvent& event : log.events()) {
    if (event.name == name) return &event;
  }
  return nullptr;
}

TEST(TraceTest, InertWithoutSession) {
  EXPECT_FALSE(TracingActive());
  OOCQ_TRACE_SPAN(span, "orphan");
  span.Arg("k", "v");
  EXPECT_FALSE(span.recording());
}

#if defined(OOCQ_DISABLE_TRACING)

// With tracing compiled out, spans stay inert even inside a session; the
// behavioral tests below only apply to the instrumented build.
TEST(TraceTest, CompiledOutSpansStayInert) {
  TraceLog log;
  {
    TraceSession session(&log);
    OOCQ_TRACE_SPAN(span, "noop");
    span.Arg("k", "v");
    EXPECT_FALSE(span.recording());
  }
  EXPECT_TRUE(log.events().empty());
}

#else  // !OOCQ_DISABLE_TRACING

TEST(TraceTest, SpanNestingDepthSeqAndArgs) {
  TraceLog log;
  {
    TraceSession session(&log);
    ASSERT_TRUE(session.active());
    EXPECT_TRUE(TracingActive());
    {
      OOCQ_TRACE_SPAN(outer, "outer");
      outer.Arg("k", "v").Arg("n", uint64_t{7});
      EXPECT_TRUE(outer.recording());
      {
        OOCQ_TRACE_SPAN(middle, "middle");
        { OOCQ_TRACE_SPAN(inner, "inner"); }
      }
    }
    OOCQ_TRACE_SPAN(sibling, "sibling");
  }
  EXPECT_FALSE(TracingActive());

  ASSERT_EQ(log.events().size(), 4u);
  const TraceEvent* outer = FindByName(log, "outer");
  const TraceEvent* middle = FindByName(log, "middle");
  const TraceEvent* inner = FindByName(log, "inner");
  const TraceEvent* sibling = FindByName(log, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);

  // Depth reflects lexical nesting; seq is start order on the thread.
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->depth, 2u);
  EXPECT_EQ(sibling->depth, 0u);
  EXPECT_EQ(outer->seq, 0u);
  EXPECT_EQ(middle->seq, 1u);
  EXPECT_EQ(inner->seq, 2u);
  EXPECT_EQ(sibling->seq, 3u);

  // Args survive in order and define the signature.
  ASSERT_EQ(outer->args.size(), 2u);
  EXPECT_EQ(outer->args[0].first, "k");
  EXPECT_EQ(outer->args[0].second, "v");
  EXPECT_EQ(outer->args[1].second, "7");
  EXPECT_EQ(outer->Signature(), "outer(k=v,n=7)");
  EXPECT_EQ(inner->Signature(), "inner()");

  // Ids are the 1..N ranks of the signature-sorted order:
  // inner() < middle() < outer(...) < sibling().
  EXPECT_EQ(inner->id, 1u);
  EXPECT_EQ(middle->id, 2u);
  EXPECT_EQ(outer->id, 3u);
  EXPECT_EQ(sibling->id, 4u);
}

TEST(TraceTest, FirstSessionWinsNestedIsInert) {
  TraceLog primary;
  TraceLog nested;
  {
    TraceSession session(&primary);
    ASSERT_TRUE(session.active());
    {
      TraceSession shadow(&nested);
      EXPECT_FALSE(shadow.active());
      OOCQ_TRACE_SPAN(span, "recorded");
    }
    // The nested session's destruction must not tear down the primary.
    EXPECT_TRUE(TracingActive());
    OOCQ_TRACE_SPAN(span, "still_recorded");
  }
  EXPECT_TRUE(nested.empty());
  EXPECT_EQ(primary.events().size(), 2u);
  EXPECT_NE(FindByName(primary, "recorded"), nullptr);
  EXPECT_NE(FindByName(primary, "still_recorded"), nullptr);

  TraceSession null_session(nullptr);
  EXPECT_FALSE(null_session.active());
  EXPECT_FALSE(TracingActive());
}

TEST(TraceTest, ThreadAttributionAndOrdering) {
  TraceLog log;
  {
    TraceSession session(&log);
    { OOCQ_TRACE_SPAN(span, "main_thread"); }
    std::vector<std::thread> workers;
    for (int worker = 0; worker < 2; ++worker) {
      workers.emplace_back([worker] {
        for (int i = 0; i < 3; ++i) {
          OOCQ_TRACE_SPAN(span, "worker");
          span.Arg("w", static_cast<uint64_t>(worker))
              .Arg("i", static_cast<uint64_t>(i));
        }
      });
    }
    for (std::thread& thread : workers) thread.join();
  }
  ASSERT_EQ(log.events().size(), 7u);

  // Three distinct threads recorded; events come back sorted by
  // (thread_index, seq) and each thread's seq counts from 0.
  std::vector<uint32_t> threads;
  for (const TraceEvent& event : log.events()) {
    threads.push_back(event.thread_index);
  }
  EXPECT_TRUE(std::is_sorted(threads.begin(), threads.end()));
  std::sort(threads.begin(), threads.end());
  threads.erase(std::unique(threads.begin(), threads.end()), threads.end());
  EXPECT_EQ(threads.size(), 3u);

  uint64_t expected_seq = 0;
  uint32_t current_thread = log.events().front().thread_index;
  for (const TraceEvent& event : log.events()) {
    if (event.thread_index != current_thread) {
      current_thread = event.thread_index;
      expected_seq = 0;
    }
    EXPECT_EQ(event.seq, expected_seq++);
  }

  // Within each worker thread the i annotation increases with seq.
  for (int worker = 0; worker < 2; ++worker) {
    std::vector<std::string> order;
    for (const TraceEvent& event : log.events()) {
      if (event.name == "worker" &&
          event.args[0].second == std::to_string(worker)) {
        order.push_back(event.args[1].second);
      }
    }
    EXPECT_EQ(order, (std::vector<std::string>{"0", "1", "2"}))
        << "worker " << worker;
  }
}

// Minimal JSON scanner: checks quotes are balanced and braces/brackets
// nest correctly outside string literals — enough to catch broken
// escaping or unbalanced emission without a JSON library.
void ExpectBalancedJson(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

TEST(TraceTest, ChromeTraceJsonWellFormed) {
  TraceLog log;
  {
    TraceSession session(&log);
    OOCQ_TRACE_SPAN(span, "spiky");
    span.Arg("text", std::string("quote\" slash\\ newline\n tab\t"));
  }
  std::string json = log.ChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"spiky\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":\"1\""), std::string::npos);
  // The raw control characters must not appear; their escapes must.
  EXPECT_EQ(json.find("newline\n"), std::string::npos);
  EXPECT_NE(json.find("quote\\\" slash\\\\ newline\\n tab\\t"),
            std::string::npos);
  ExpectBalancedJson(json);

  std::string jsonl = log.JsonlString();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  size_t start = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = jsonl.substr(start, end - start);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ExpectBalancedJson(line);
    start = end + 1;
  }
}

TEST(TraceTest, LogAccumulatesAcrossSessionsWithFreshIds) {
  TraceLog log;
  {
    TraceSession session(&log);
    OOCQ_TRACE_SPAN(span, "first");
  }
  {
    TraceSession session(&log);
    OOCQ_TRACE_SPAN(span, "second");
  }
  ASSERT_EQ(log.events().size(), 2u);
  // Ids are reassigned over the whole log: first() < second().
  EXPECT_EQ(FindByName(log, "first")->id, 1u);
  EXPECT_EQ(FindByName(log, "second")->id, 2u);
}

class TracePipelineTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(kVehicleRentalSchema);

  // `y in Client` keeps four satisfiable disjuncts after expansion, so the
  // redundancy matrix actually runs Contained() tests (a Discount-only
  // query prunes to one disjunct and skips them).
  static constexpr const char* kQuery =
      "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }";

  TraceLog RunPipeline(uint32_t threads) {
    TraceLog log;
    EngineOptions options;
    options.parallel.num_threads = threads;
    options.observability.trace = &log;
    QueryOptimizer optimizer(schema_, options);
    StatusOr<OptimizeReport> report = optimizer.OptimizeText(kQuery);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return log;
  }
};

TEST_F(TracePipelineTest, PipelinePhasesAppearAsSpans) {
  TraceLog log = RunPipeline(1);
  ASSERT_FALSE(log.empty());
  for (const char* name :
       {"Optimize", "NormalizeToWellFormed", "Expand",
        "RemoveRedundantDisjuncts", "MinimizeVariables", "Contained"}) {
    EXPECT_NE(FindByName(log, name), nullptr) << "missing span " << name;
  }
  // Every Contained span names the specialization that decided it.
  for (const TraceEvent& event : log.events()) {
    if (event.name != "Contained") continue;
    ASSERT_FALSE(event.args.empty());
    EXPECT_EQ(event.args[0].first, "spec");
    EXPECT_TRUE(event.args[0].second == "Cor3.2" ||
                event.args[0].second == "Cor3.3" ||
                event.args[0].second == "Cor3.4" ||
                event.args[0].second == "Thm3.1" ||
                event.args[0].second == "trivial")
        << event.Signature();
  }
}

TEST_F(TracePipelineTest, PositivePipelineStructureIdenticalAcrossThreads) {
  TraceLog baseline = RunPipeline(1);
  ASSERT_FALSE(baseline.empty());
  for (uint32_t threads : {1u, 2u, 8u}) {
    TraceLog log = RunPipeline(threads);
    EXPECT_EQ(log.SpanSignatures(), baseline.SpanSignatures())
        << threads << " thread(s)";
    EXPECT_EQ(log.StructureDigest(), baseline.StructureDigest())
        << threads << " thread(s)";
  }
}

#endif  // OOCQ_DISABLE_TRACING

}  // namespace
}  // namespace oocq
