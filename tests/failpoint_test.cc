// The failpoint registry (support/failpoint.h): spec parsing, hit
// selectors, counters, the env bootstrap contract, and the disarmed
// fast path.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "support/failpoint.h"
#include "support/status.h"
#include "test_util.h"

namespace oocq {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Reset(); }
  void TearDown() override { Failpoints::Reset(); }
};

TEST_F(FailpointTest, DisarmedSitesAreInertAndUncounted) {
  EXPECT_FALSE(Failpoints::AnyActive());
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  EXPECT_TRUE(Failpoints::Hit("tcp/accept"));
  // The disarmed fast path never touches the registry, so nothing is
  // counted — hit accounting is a property of armed runs.
  EXPECT_EQ(Failpoints::HitCount("wal/fsync"), 0u);
  EXPECT_TRUE(Failpoints::HitNames().empty());
}

TEST_F(FailpointTest, ErrorActionDefaultsToUnavailable) {
  OOCQ_ASSERT_OK(Failpoints::Configure("wal/fsync=error"));
  EXPECT_TRUE(Failpoints::AnyActive());
  Status injected = Failpoints::Check("wal/fsync");
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  EXPECT_NE(injected.message().find("wal/fsync"), std::string::npos);
  EXPECT_TRUE(IsRetryable(injected.code()));
}

TEST_F(FailpointTest, ErrorActionHonorsExplicitCode) {
  OOCQ_ASSERT_OK(
      Failpoints::Configure("snapshot/write=error:RESOURCE_EXHAUSTED"));
  EXPECT_EQ(Failpoints::Check("snapshot/write").code(),
            StatusCode::kResourceExhausted);
  OOCQ_ASSERT_OK(Failpoints::Configure("snapshot/write=error:INTERNAL"));
  EXPECT_EQ(Failpoints::Check("snapshot/write").code(),
            StatusCode::kInternal);
}

TEST_F(FailpointTest, OnceSelectorFiresOnExactlyThatHit) {
  // "fail the 3rd WAL fsync" — the reproducibility contract.
  OOCQ_ASSERT_OK(Failpoints::Configure("wal/fsync=error@3"));
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  EXPECT_EQ(Failpoints::Check("wal/fsync").code(), StatusCode::kUnavailable);
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  EXPECT_EQ(Failpoints::HitCount("wal/fsync"), 4u);
}

TEST_F(FailpointTest, FromSelectorFiresOnEveryHitAfter) {
  OOCQ_ASSERT_OK(Failpoints::Configure("tcp/read=error@2+"));
  OOCQ_EXPECT_OK(Failpoints::Check("tcp/read"));
  EXPECT_FALSE(Failpoints::Check("tcp/read").ok());
  EXPECT_FALSE(Failpoints::Check("tcp/read").ok());
}

TEST_F(FailpointTest, RangeSelectorFiresOnTheWindowThenHeals) {
  // The partition-heal shape: a process armed once (OOCQ_FAILPOINTS is
  // read exactly once) black-holes a window of hits and then recovers.
  OOCQ_ASSERT_OK(Failpoints::Configure("repl/ship=error@2-3"));
  OOCQ_EXPECT_OK(Failpoints::Check("repl/ship"));
  EXPECT_FALSE(Failpoints::Check("repl/ship").ok());
  EXPECT_FALSE(Failpoints::Check("repl/ship").ok());
  OOCQ_EXPECT_OK(Failpoints::Check("repl/ship"));  // healed
  OOCQ_EXPECT_OK(Failpoints::Check("repl/ship"));
  EXPECT_EQ(Failpoints::HitCount("repl/ship"), 5u);
  // Degenerate window: @N-N behaves exactly like @N.
  OOCQ_ASSERT_OK(Failpoints::Configure("tcp/read=error@1-1"));
  EXPECT_FALSE(Failpoints::Check("tcp/read").ok());
  OOCQ_EXPECT_OK(Failpoints::Check("tcp/read"));
}

TEST_F(FailpointTest, RangeSelectorRejectsMalformedWindows) {
  EXPECT_EQ(Failpoints::Configure("a/b=error@3-2").code(),
            StatusCode::kInvalidArgument);  // backwards
  EXPECT_EQ(Failpoints::Configure("a/b=error@0-2").code(),
            StatusCode::kInvalidArgument);  // hits are 1-based
  EXPECT_EQ(Failpoints::Configure("a/b=error@2-").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("a/b=error@2-3+").code(),
            StatusCode::kInvalidArgument);  // range and from don't mix
  EXPECT_FALSE(Failpoints::AnyActive());
}

TEST_F(FailpointTest, LabeledChecksMatchPeerGlobs) {
  // One black-holed peer: only the matching label fails.
  OOCQ_ASSERT_OK(Failpoints::Configure("net/partition:127.0.0.1:7741=error"));
  EXPECT_FALSE(Failpoints::CheckLabeled("net/partition", "127.0.0.1:7741").ok());
  OOCQ_EXPECT_OK(Failpoints::CheckLabeled("net/partition", "127.0.0.1:7742"));
  EXPECT_FALSE(Failpoints::HitLabeled("net/partition", "127.0.0.1:7741"));
  EXPECT_TRUE(Failpoints::HitLabeled("net/partition", "127.0.0.1:7742"));
  // The bare site name is counted on every labeled check, so chaos
  // coverage sees the seam regardless of which peers were targeted.
  EXPECT_GE(Failpoints::HitCount("net/partition"), 4u);

  // Globs: `*` spans any run, `?` exactly one character.
  Failpoints::Reset();
  OOCQ_ASSERT_OK(Failpoints::Configure("net/partition:10.0.*:???\?=error"));
  EXPECT_FALSE(Failpoints::CheckLabeled("net/partition", "10.0.3.7:7741").ok());
  OOCQ_EXPECT_OK(Failpoints::CheckLabeled("net/partition", "10.0.3.7:744"));
  OOCQ_EXPECT_OK(Failpoints::CheckLabeled("net/partition", "10.1.3.7:7741"));

  // `net/partition:*` hits every peer, and selectors still apply to the
  // labeled entry — an armed window partitions then heals per peer-set.
  Failpoints::Reset();
  OOCQ_ASSERT_OK(Failpoints::Configure("net/partition:*=error@1-2"));
  EXPECT_FALSE(Failpoints::CheckLabeled("net/partition", "a:1").ok());
  EXPECT_FALSE(Failpoints::CheckLabeled("net/partition", "b:2").ok());
  OOCQ_EXPECT_OK(Failpoints::CheckLabeled("net/partition", "a:1"));
}

TEST_F(FailpointTest, HitIsFalseOnInjectedErrorForVoidSites) {
  OOCQ_ASSERT_OK(Failpoints::Configure("tcp/accept=error@1"));
  EXPECT_FALSE(Failpoints::Hit("tcp/accept"));  // "site should fail"
  EXPECT_TRUE(Failpoints::Hit("tcp/accept"));   // once selector passed
}

TEST_F(FailpointTest, DelayActionSleepsThenContinues) {
  OOCQ_ASSERT_OK(Failpoints::Configure("pool/dispatch=delay:30"));
  auto start = std::chrono::steady_clock::now();
  OOCQ_EXPECT_OK(Failpoints::Check("pool/dispatch"));
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FailpointTest, CommaJoinedSpecArmsEveryEntry) {
  OOCQ_ASSERT_OK(
      Failpoints::Configure("wal/fsync=error@2,tcp/accept=delay:1"));
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  EXPECT_FALSE(Failpoints::Check("wal/fsync").ok());
  EXPECT_TRUE(Failpoints::Hit("tcp/accept"));
  EXPECT_EQ(Failpoints::HitCount("tcp/accept"), 1u);
}

TEST_F(FailpointTest, OffDisarmsAndConfigureRestartsHitCounter) {
  OOCQ_ASSERT_OK(Failpoints::Configure("wal/fsync=error@1"));
  EXPECT_FALSE(Failpoints::Check("wal/fsync").ok());
  OOCQ_ASSERT_OK(Failpoints::Configure("wal/fsync=off"));
  // Another point keeps the registry armed so the site is still counted.
  OOCQ_ASSERT_OK(Failpoints::Configure("tcp/write=delay:1"));
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  EXPECT_EQ(Failpoints::HitCount("wal/fsync"), 1u);  // counter restarted
}

TEST_F(FailpointTest, MalformedSpecsRejectAtomically) {
  // The bad tail entry must not leave the good head armed.
  EXPECT_EQ(Failpoints::Configure("wal/fsync=error,oops").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("wal/fsync=explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("wal/fsync=error@0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("wal/fsync=error@x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("wal/fsync=delay").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("wal/fsync=error:BOGUS").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Configure("=error").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(Failpoints::AnyActive());
}

TEST_F(FailpointTest, EmptySpecIsANoOp) {
  OOCQ_EXPECT_OK(Failpoints::Configure(""));
  EXPECT_FALSE(Failpoints::AnyActive());
}

TEST_F(FailpointTest, HitNamesTracksArmedRunCoverage) {
  OOCQ_ASSERT_OK(Failpoints::Configure("wal/fsync=delay:0"));
  OOCQ_EXPECT_OK(Failpoints::Check("wal/fsync"));
  OOCQ_EXPECT_OK(Failpoints::Check("snapshot/load"));  // self-registered
  std::vector<std::string> hit = Failpoints::HitNames();
  ASSERT_EQ(hit.size(), 2u);
  EXPECT_EQ(hit[0], "snapshot/load");
  EXPECT_EQ(hit[1], "wal/fsync");
}

TEST_F(FailpointTest, KnownNamesListsTheWiredSites) {
  const std::vector<std::string>& names = Failpoints::KnownNames();
  EXPECT_GE(names.size(), 11u);
  for (const char* expected :
       {"wal/append", "wal/fsync", "snapshot/write", "snapshot/load",
        "pool/dispatch", "core/subset_scan", "cache/lookup",
        "service/execute", "tcp/accept", "tcp/read", "tcp/write",
        "repl/fence", "net/partition"}) {
    bool found = false;
    for (const std::string& name : names) found = found || name == expected;
    EXPECT_TRUE(found) << expected;
  }
}

using FailpointDeathTest = FailpointTest;

TEST_F(FailpointDeathTest, CrashActionAborts) {
  OOCQ_ASSERT_OK(Failpoints::Configure("snapshot/write=crash@2"));
  OOCQ_EXPECT_OK(Failpoints::Check("snapshot/write"));
  EXPECT_DEATH((void)Failpoints::Check("snapshot/write"), "injected crash");
}

}  // namespace
}  // namespace oocq
