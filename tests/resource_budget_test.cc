// ResourceBudget (support/resource_budget.h): limits, the retryable
// overrun contract, parent chaining, and the destructor's release of
// work charges back to the chain.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "support/resource_budget.h"
#include "support/status.h"
#include "test_util.h"

namespace oocq {
namespace {

TEST(ResourceBudgetTest, UnlimitedByDefault) {
  ResourceLimits limits;
  EXPECT_FALSE(limits.AnySet());
  ResourceBudget budget(limits);
  OOCQ_EXPECT_OK(budget.ChargeDisjuncts(1'000'000));
  OOCQ_EXPECT_OK(budget.ChargeSubsetWork(1'000'000));
  OOCQ_EXPECT_OK(budget.ChargeResidentBytes(1'000'000));
  EXPECT_EQ(budget.exhausted_count(), 0u);
}

TEST(ResourceBudgetTest, OverrunIsRetryableAndUndone) {
  ResourceLimits limits;
  limits.max_subset_work_units = 10;
  ResourceBudget budget(limits);
  OOCQ_EXPECT_OK(budget.ChargeSubsetWork(10));
  Status refused = budget.ChargeSubsetWork(1);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(refused.code()));
  EXPECT_NE(refused.message().find("max_subset_work_units"),
            std::string::npos);
  // The refused charge is undone: the budget sits exactly at its cap.
  EXPECT_EQ(budget.work_units_charged(), 10u);
  EXPECT_EQ(budget.exhausted_count(), 1u);
}

TEST(ResourceBudgetTest, AxesAreIndependent) {
  ResourceLimits limits;
  limits.max_expanded_disjuncts = 5;
  ResourceBudget budget(limits);
  EXPECT_EQ(budget.ChargeDisjuncts(6).code(),
            StatusCode::kResourceExhausted);
  // Work units and resident bytes are not capped by the disjunct limit.
  OOCQ_EXPECT_OK(budget.ChargeSubsetWork(100));
  OOCQ_EXPECT_OK(budget.ChargeResidentBytes(100));
}

TEST(ResourceBudgetTest, ChildChargesPropagateToParent) {
  ResourceLimits parent_limits;
  parent_limits.max_subset_work_units = 10;
  ResourceBudget parent(parent_limits);
  ResourceBudget child(ResourceLimits{}, &parent);

  OOCQ_EXPECT_OK(child.ChargeSubsetWork(7));
  EXPECT_EQ(child.work_units_charged(), 7u);
  EXPECT_EQ(parent.work_units_charged(), 7u);

  // The child is unlimited, but the parent's aggregate cap still binds.
  Status refused = child.ChargeSubsetWork(4);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  // A parent refusal leaves no child charge behind.
  EXPECT_EQ(child.work_units_charged(), 7u);
  EXPECT_EQ(parent.work_units_charged(), 7u);
  EXPECT_EQ(parent.exhausted_count(), 1u);
  EXPECT_EQ(child.exhausted_count(), 0u);
}

TEST(ResourceBudgetTest, ChildRefusalReleasesParentCharge) {
  ResourceBudget parent(ResourceLimits{});
  ResourceLimits child_limits;
  child_limits.max_expanded_disjuncts = 3;
  ResourceBudget child(child_limits, &parent);

  EXPECT_EQ(child.ChargeDisjuncts(4).code(),
            StatusCode::kResourceExhausted);
  // The parent was charged first, then released by the child's undo.
  EXPECT_EQ(parent.disjuncts_charged(), 0u);
  EXPECT_EQ(child.disjuncts_charged(), 0u);
}

TEST(ResourceBudgetTest, DestructorReturnsWorkChargesToParent) {
  ResourceLimits parent_limits;
  parent_limits.max_subset_work_units = 10;
  parent_limits.max_expanded_disjuncts = 10;
  ResourceBudget parent(parent_limits);
  {
    ResourceBudget request(ResourceLimits{}, &parent);
    OOCQ_EXPECT_OK(request.ChargeSubsetWork(9));
    OOCQ_EXPECT_OK(request.ChargeDisjuncts(9));
    EXPECT_EQ(parent.work_units_charged(), 9u);
  }
  // The lease expired with the request: the next request gets the full
  // aggregate window again.
  EXPECT_EQ(parent.work_units_charged(), 0u);
  EXPECT_EQ(parent.disjuncts_charged(), 0u);
  ResourceBudget next(ResourceLimits{}, &parent);
  OOCQ_EXPECT_OK(next.ChargeSubsetWork(10));
}

TEST(ResourceBudgetTest, ResidentBytesAreNotReturnedByDestructor) {
  ResourceBudget parent(ResourceLimits{});
  {
    ResourceBudget child(ResourceLimits{}, &parent);
    OOCQ_EXPECT_OK(child.ChargeResidentBytes(64));
    EXPECT_EQ(parent.resident_bytes(), 64u);
  }
  // Catalog text outlives the request that registered it; release is
  // explicit (DropSession), never implicit.
  EXPECT_EQ(parent.resident_bytes(), 64u);
  parent.ReleaseResidentBytes(64);
  EXPECT_EQ(parent.resident_bytes(), 0u);
}

TEST(ResourceBudgetTest, ConcurrentChargesNeverExceedTheCap) {
  ResourceLimits limits;
  limits.max_subset_work_units = 1000;
  ResourceBudget budget(limits);
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&budget, &accepted] {
      for (int i = 0; i < 500; ++i) {
        if (budget.ChargeSubsetWork(1).ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // Refused charges undo themselves, so the settled counter equals the
  // accepted count and never exceeds the cap. (A refusal racing another
  // thread's transient overshoot may spuriously refuse near the cap, so
  // `accepted` is bounded, not pinned, at 1000.)
  EXPECT_EQ(budget.work_units_charged(), accepted.load());
  EXPECT_LE(accepted.load(), 1000u);
  EXPECT_GE(accepted.load(), 900u);
  EXPECT_EQ(budget.exhausted_count(), 8u * 500u - accepted.load());
}

}  // namespace
}  // namespace oocq
