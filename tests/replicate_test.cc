// The replication building blocks in isolation (docs/replication.md):
// the consistent-hash ring's determinism and remap bounds, the hex wire
// codec for shipped WAL frames, and WAL tail reading — including the two
// hard cases the protocol is designed around: a torn tail left by a
// crash mid-append, and a compaction (Reset) racing a subscriber.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "persist/codec.h"
#include "persist/wal.h"
#include "replicate/ring.h"
#include "replicate/wire.h"
#include "support/file.h"
#include "test_util.h"

namespace oocq::replicate {
namespace {

using ::oocq::persist::DecodeResult;
using ::oocq::persist::EncodedHeaderSize;
using ::oocq::persist::Record;
using ::oocq::persist::RecordType;
using ::oocq::persist::WalOptions;
using ::oocq::persist::WriteAheadLog;

// ---- Consistent-hash ring ----------------------------------------------

TEST(RingTest, EmptyRingLooksUpNothing) {
  ConsistentHashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.Lookup("anything"), "");
}

TEST(RingTest, SingleNodeOwnsEverything) {
  ConsistentHashRing ring;
  ring.AddNode("a:1");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.Lookup("s" + std::to_string(i)), "a:1");
  }
}

TEST(RingTest, LookupIsDeterministicAcrossInstances) {
  // Two independently built rings (different insertion order) must agree
  // on every key — the router and any peer resolve ownership without
  // coordination.
  ConsistentHashRing forward, reverse;
  const std::vector<std::string> nodes = {"a:1", "b:2", "c:3", "d:4"};
  for (const std::string& n : nodes) forward.AddNode(n);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    reverse.AddNode(*it);
  }
  for (int i = 0; i < 500; ++i) {
    std::string key = "session-" + std::to_string(i);
    EXPECT_EQ(forward.Lookup(key), reverse.Lookup(key)) << key;
  }
}

TEST(RingTest, AllNodesReceiveKeys) {
  ConsistentHashRing ring;
  ring.AddNode("a:1");
  ring.AddNode("b:2");
  ring.AddNode("c:3");
  std::map<std::string, int> owned;
  for (int i = 0; i < 3000; ++i) {
    owned[ring.Lookup("s" + std::to_string(i))]++;
  }
  ASSERT_EQ(owned.size(), 3u);
  // 128 vnodes per node spreads well; no node should starve (the exact
  // split is hash luck, but an order-of-magnitude skew means the ring is
  // broken).
  for (const auto& [node, count] : owned) {
    EXPECT_GT(count, 300) << node;
  }
}

TEST(RingTest, RemovalOnlyRemapsTheRemovedNodesKeys) {
  ConsistentHashRing ring;
  ring.AddNode("a:1");
  ring.AddNode("b:2");
  ring.AddNode("c:3");
  std::map<std::string, std::string> before;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "s" + std::to_string(i);
    before[key] = ring.Lookup(key);
  }
  ring.RemoveNode("b:2");
  for (const auto& [key, owner] : before) {
    std::string now = ring.Lookup(key);
    if (owner != "b:2") {
      // The consistent-hashing contract: keys not owned by the removed
      // node do not move.
      EXPECT_EQ(now, owner) << key;
    } else {
      EXPECT_NE(now, "b:2") << key;
    }
  }
}

TEST(RingTest, AddBackRestoresOwnership) {
  ConsistentHashRing ring;
  ring.AddNode("a:1");
  ring.AddNode("b:2");
  std::map<std::string, std::string> before;
  for (int i = 0; i < 500; ++i) {
    std::string key = "s" + std::to_string(i);
    before[key] = ring.Lookup(key);
  }
  ring.RemoveNode("a:1");
  ring.AddNode("a:1");
  for (const auto& [key, owner] : before) {
    EXPECT_EQ(ring.Lookup(key), owner) << key;
  }
}

TEST(RingTest, ContainsAndNodes) {
  ConsistentHashRing ring;
  ring.AddNode("b:2");
  ring.AddNode("a:1");
  ring.AddNode("a:1");  // duplicate add is a no-op
  EXPECT_TRUE(ring.Contains("a:1"));
  EXPECT_FALSE(ring.Contains("c:3"));
  EXPECT_EQ(ring.node_count(), 2u);
  EXPECT_EQ(ring.Nodes(), (std::vector<std::string>{"a:1", "b:2"}));
  ring.RemoveNode("c:3");  // removing an absent node is a no-op
  EXPECT_EQ(ring.node_count(), 2u);
}

// ---- Wire codec --------------------------------------------------------

Record MakeRecord(RecordType type, const std::string& sid,
                  const std::string& name, const std::string& text) {
  Record record;
  record.type = type;
  record.session_id = sid;
  record.name = name;
  record.text = text;
  return record;
}

TEST(WireTest, HexRoundTripsArbitraryBytes) {
  std::string raw;
  for (int i = 0; i < 256; ++i) raw.push_back(static_cast<char>(i));
  StatusOr<std::string> back = HexDecode(HexEncode(raw));
  OOCQ_ASSERT_OK(back.status());
  EXPECT_EQ(*back, raw);
}

TEST(WireTest, HexDecodeRejectsGarbage) {
  EXPECT_FALSE(HexDecode("abc").ok());   // odd length
  EXPECT_FALSE(HexDecode("zz").ok());    // not a hex digit
}

TEST(WireTest, ShippedRecordRoundTrip) {
  Record record = MakeRecord(RecordType::kDefineQuery, "s1", "q1",
                             "{ x | x in Auto }\nsecond line");
  std::string frame;
  persist::EncodeRecord(record, &frame);
  std::string line = EncodeShippedRecord(4242, frame);
  StatusOr<ShippedRecord> shipped = DecodeShippedLine(line);
  OOCQ_ASSERT_OK(shipped.status());
  EXPECT_EQ(shipped->offset, 4242u);
  EXPECT_EQ(shipped->record, record);
}

TEST(WireTest, DumpRecordRoundTrip) {
  Record record =
      MakeRecord(RecordType::kCreateSession, "s7", "", "schema S { }");
  StatusOr<ShippedRecord> shipped = DecodeShippedLine(EncodeDumpRecord(record));
  OOCQ_ASSERT_OK(shipped.status());
  EXPECT_EQ(shipped->offset, 0u);
  EXPECT_EQ(shipped->record, record);
}

TEST(WireTest, DecodeRejectsBadLines) {
  EXPECT_FALSE(DecodeShippedLine("").ok());
  EXPECT_FALSE(DecodeShippedLine("X 1 abcd").ok());  // unknown tag
  EXPECT_FALSE(DecodeShippedLine("R abcd").ok());    // missing offset
  // A well-formed line whose frame bytes fail the CRC must not decode:
  Record record = MakeRecord(RecordType::kSetState, "s1", "", "state { }");
  std::string frame;
  persist::EncodeRecord(record, &frame);
  frame.back() ^= 0x40;
  EXPECT_FALSE(DecodeShippedLine(EncodeShippedRecord(0, frame)).ok());
}

// ---- WAL tail reading --------------------------------------------------

std::string FreshWalPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "oocq_replicate_" + name + ".wal";
  (void)RemoveFileIfExists(path);
  return path;
}

Record NumberedRecord(int i) {
  return MakeRecord(RecordType::kDefineQuery, "s1", "q" + std::to_string(i),
                    "{ x | x in Auto }  // #" + std::to_string(i));
}

TEST(WalTailTest, ReadsBackEverythingAppended) {
  std::string path = FreshWalPath("roundtrip");
  WalOptions options;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options);
  OOCQ_ASSERT_OK(wal.status());
  for (int i = 0; i < 5; ++i) OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(i)));

  EXPECT_EQ((*wal)->epoch(), 1u);
  EXPECT_EQ((*wal)->synced_seq(), 5u);

  StatusOr<WriteAheadLog::TailBatch> batch =
      (*wal)->ReadDurableRange(EncodedHeaderSize(), 0);
  OOCQ_ASSERT_OK(batch.status());
  ASSERT_EQ(batch->records.size(), 5u);
  EXPECT_EQ(batch->next_offset, batch->durable_bytes);
  EXPECT_EQ(batch->durable_seq, 5u);
  EXPECT_EQ(batch->epoch, 1u);

  // Every shipped frame decodes to the record appended, and the offsets
  // chain: each frame starts where the previous one ended.
  uint64_t expected_offset = EncodedHeaderSize();
  for (int i = 0; i < 5; ++i) {
    const WriteAheadLog::TailRecord& tail = batch->records[i];
    EXPECT_EQ(tail.offset, expected_offset);
    size_t pos = 0;
    Record decoded;
    ASSERT_EQ(persist::DecodeRecord(tail.frame, &pos, &decoded),
              DecodeResult::kOk);
    EXPECT_EQ(decoded, NumberedRecord(i));
    expected_offset += tail.frame.size();
  }

  // Resuming from mid-stream returns only the suffix.
  StatusOr<WriteAheadLog::TailBatch> suffix =
      (*wal)->ReadDurableRange(batch->records[3].offset, 0);
  OOCQ_ASSERT_OK(suffix.status());
  EXPECT_EQ(suffix->records.size(), 2u);

  // Caught up: empty batch, not an error.
  StatusOr<WriteAheadLog::TailBatch> empty =
      (*wal)->ReadDurableRange(batch->next_offset, 0);
  OOCQ_ASSERT_OK(empty.status());
  EXPECT_TRUE(empty->records.empty());
  EXPECT_EQ(empty->next_offset, batch->next_offset);
}

TEST(WalTailTest, SmallMaxBytesStillMakesProgress) {
  std::string path = FreshWalPath("clamp");
  WalOptions options;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options);
  OOCQ_ASSERT_OK(wal.status());
  for (int i = 0; i < 4; ++i) OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(i)));

  // A clamp smaller than one frame must still return that frame (the
  // widen-and-retry path), and chained reads must drain the log.
  uint64_t offset = EncodedHeaderSize();
  int total = 0;
  while (true) {
    StatusOr<WriteAheadLog::TailBatch> batch =
        (*wal)->ReadDurableRange(offset, 8);
    OOCQ_ASSERT_OK(batch.status());
    if (batch->records.empty()) break;
    total += static_cast<int>(batch->records.size());
    ASSERT_GT(batch->next_offset, offset);
    offset = batch->next_offset;
  }
  EXPECT_EQ(total, 4);
}

TEST(WalTailTest, BadOffsetsDemandResync) {
  std::string path = FreshWalPath("badoffset");
  WalOptions options;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options);
  OOCQ_ASSERT_OK(wal.status());
  OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(0)));

  // Before the header, past the tip, and mid-frame: all
  // kFailedPrecondition — the subscriber's universal resync signal.
  EXPECT_EQ((*wal)->ReadDurableRange(0, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*wal)->ReadDurableRange((*wal)->synced_bytes() + 999, 0)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*wal)->ReadDurableRange(EncodedHeaderSize() + 3, 0)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(WalTailTest, TailFollowAcrossTornTail) {
  // A crash mid-append leaves a torn frame. fail_after_bytes tears the
  // third append exactly as a SIGKILL would; replay truncates it; the
  // reopened log must ship exactly the two intact records — never torn
  // bytes (satellite: tail-follow across a torn tail).
  std::string path = FreshWalPath("torn");
  uint64_t two_records_bytes = 0;
  {
    WalOptions options;
    options.group_commit_window_us = 0;
    StatusOr<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(path, options);
    OOCQ_ASSERT_OK(wal.status());
    OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(0)));
    OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(1)));
    two_records_bytes = (*wal)->synced_bytes();
    WalOptions tearing = options;
    tearing.fail_after_bytes = two_records_bytes + 10;  // mid-third-frame
    StatusOr<std::unique_ptr<WriteAheadLog>> torn =
        WriteAheadLog::Open(path, tearing);
    OOCQ_ASSERT_OK(torn.status());
    EXPECT_FALSE((*torn)->Append(NumberedRecord(2)).ok());
  }

  StatusOr<WriteAheadLog::ReplayResult> replayed = WriteAheadLog::Replay(path);
  OOCQ_ASSERT_OK(replayed.status());
  ASSERT_EQ(replayed->records.size(), 2u);
  EXPECT_GT(replayed->truncated_bytes, 0u);

  WalOptions options;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options);
  OOCQ_ASSERT_OK(wal.status());
  (*wal)->NoteExistingRecords(replayed->records.size());
  EXPECT_EQ((*wal)->synced_seq(), 2u);
  EXPECT_EQ((*wal)->synced_bytes(), two_records_bytes);

  StatusOr<WriteAheadLog::TailBatch> batch =
      (*wal)->ReadDurableRange(EncodedHeaderSize(), 0);
  OOCQ_ASSERT_OK(batch.status());
  ASSERT_EQ(batch->records.size(), 2u);
  EXPECT_EQ(batch->durable_seq, 2u);
  // The stream keeps flowing after the truncation: a new append lands at
  // the truncated tip and ships from next_offset.
  OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(3)));
  StatusOr<WriteAheadLog::TailBatch> more =
      (*wal)->ReadDurableRange(batch->next_offset, 0);
  OOCQ_ASSERT_OK(more.status());
  ASSERT_EQ(more->records.size(), 1u);
  size_t pos = 0;
  Record decoded;
  ASSERT_EQ(persist::DecodeRecord(more->records[0].frame, &pos, &decoded),
            DecodeResult::kOk);
  EXPECT_EQ(decoded, NumberedRecord(3));
}

TEST(WalTailTest, CompactionBumpsEpochAndInvalidatesOffsets) {
  // Snapshot compaction resets the WAL; a subscriber parked on the old
  // epoch must get kFailedPrecondition, not silently misread the new
  // file (satellite: tail-follow across snapshot + WAL reset).
  std::string path = FreshWalPath("compact");
  WalOptions options;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options);
  OOCQ_ASSERT_OK(wal.status());
  for (int i = 0; i < 3; ++i) OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(i)));
  StatusOr<WriteAheadLog::TailBatch> batch =
      (*wal)->ReadDurableRange(EncodedHeaderSize(), 0);
  OOCQ_ASSERT_OK(batch.status());
  uint64_t old_tip = batch->next_offset;

  OOCQ_ASSERT_OK((*wal)->Reset());
  EXPECT_EQ((*wal)->epoch(), 2u);
  EXPECT_EQ((*wal)->synced_seq(), 0u);

  // The old cursor is beyond the reset log's tip: resync demanded.
  EXPECT_EQ((*wal)->ReadDurableRange(old_tip, 0).status().code(),
            StatusCode::kFailedPrecondition);

  // The new epoch streams from the header again.
  OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(9)));
  StatusOr<WriteAheadLog::TailBatch> fresh =
      (*wal)->ReadDurableRange(EncodedHeaderSize(), 0);
  OOCQ_ASSERT_OK(fresh.status());
  ASSERT_EQ(fresh->records.size(), 1u);
  EXPECT_EQ(fresh->epoch, 2u);
  EXPECT_EQ(fresh->durable_seq, 1u);
}

TEST(WalTailTest, WaitDurableWakesOnAppendAndEpochChange) {
  std::string path = FreshWalPath("wait");
  WalOptions options;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<WriteAheadLog>> wal =
      WriteAheadLog::Open(path, options);
  OOCQ_ASSERT_OK(wal.status());
  uint64_t tip = (*wal)->synced_bytes();

  // Nothing new: times out false.
  EXPECT_FALSE((*wal)->WaitDurable(tip, 30));

  std::thread appender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    OOCQ_ASSERT_OK((*wal)->Append(NumberedRecord(0)));
  });
  // Wakes well before the 5s ceiling once the append's fsync lands.
  EXPECT_TRUE((*wal)->WaitDurable(tip, 5000));
  appender.join();

  uint64_t new_tip = (*wal)->synced_bytes();
  std::thread resetter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    OOCQ_ASSERT_OK((*wal)->Reset());
  });
  // An epoch bump is also "something new" (the caller must resync).
  EXPECT_TRUE((*wal)->WaitDurable(new_tip, 5000));
  resetter.join();
}

}  // namespace
}  // namespace oocq::replicate
