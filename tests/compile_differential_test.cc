// Differential property suite pinning the compiled paths to the
// interpreters: for ≥1000 random (query, state) pairs the bytecode VM
// must produce exactly the answers and status codes of the tree walker,
// on both Evaluate and EvaluateIndexed — including the budget-exhaustion
// and cancellation legs — and the compiled Thm 3.1 subset scan must
// agree with the interpreted scan on random containment pairs. Labeled
// `concurrency` so the TSan CI job runs it.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/containment.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "random_query.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "state/index.h"
#include "state/indexed_evaluation.h"
#include "support/cancellation.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

const char* const kSchema = R"(
schema Differential {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
  class C1 under C { }
  class C2 under C { B: E; T: {E}; }
})";

RandomQueryParams FullParams() {
  RandomQueryParams params;
  params.max_vars = 3;
  params.max_extra_atoms = 4;
  params.allow_negative = true;
  params.terminal_only = true;
  params.use_constants = false;
  return params;
}

/// One compiled-vs-interpreted comparison; returns true when the query
/// was structurally valid enough to evaluate at all.
void CompareOnce(const Schema& schema, const State& state,
                 const StateIndex& index, const ConjunctiveQuery& query,
                 uint64_t max_assignments) {
  EvalOptions interpreted;
  interpreted.enable_compilation = false;
  interpreted.max_assignments = max_assignments;
  EvalOptions compiled;
  compiled.enable_compilation = true;
  compiled.max_assignments = max_assignments;

  StatusOr<std::vector<Oid>> walker = Evaluate(state, query, interpreted);
  StatusOr<std::vector<Oid>> vm = Evaluate(state, query, compiled);
  ASSERT_EQ(walker.ok(), vm.ok())
      << QueryToString(schema, query) << "\nwalker: "
      << walker.status().ToString() << "\nvm: " << vm.status().ToString();
  if (walker.ok()) {
    EXPECT_EQ(*walker, *vm) << QueryToString(schema, query);
  } else {
    EXPECT_EQ(walker.status().code(), vm.status().code())
        << QueryToString(schema, query);
  }

  // The indexed evaluator's compiled fast path must agree too. (Answer
  // sets are identical across all four paths; only statuses may differ
  // between walkers when a budget trips, so compare the indexed pair on
  // the ok leg only.)
  StatusOr<std::vector<Oid>> indexed_vm = EvaluateIndexed(index, query, compiled);
  if (walker.ok()) {
    ASSERT_TRUE(indexed_vm.ok()) << indexed_vm.status().ToString();
    EXPECT_EQ(*walker, *indexed_vm) << QueryToString(schema, query);
  }
}

TEST(CompileDifferentialTest, ThousandRandomPairsAgreeWithTreeWalker) {
  Schema schema = MustParseSchema(kSchema);
  std::mt19937_64 rng(20260808);
  RandomQueryParams params = FullParams();

  GeneratorParams state_params;
  state_params.objects_per_class = 5;

  // 10 random states × 100 well-formed random queries each: 1000
  // distinct (query, state) pairs.
  int compared = 0;
  for (uint64_t state_seed = 1; state_seed <= 10; ++state_seed) {
    state_params.seed = state_seed;
    State state = GenerateRandomState(schema, state_params);
    StateIndex index(state);
    int in_state = 0;
    while (in_state < 100) {
      ConjunctiveQuery query = GenerateRandomQuery(schema, rng, params);
      if (!CheckWellFormed(schema, query).ok()) continue;
      CompareOnce(schema, state, index, query,
                  /*max_assignments=*/100'000'000);
      if (::testing::Test::HasFatalFailure()) return;
      ++in_state;
      ++compared;
    }
  }
  EXPECT_GE(compared, 1000);
}

TEST(CompileDifferentialTest, BudgetExhaustionStatusesAgree) {
  // Assignment-budget legs. At max_assignments = 0 the outcome is
  // order-independent — an empty candidate pool answers {} before any
  // charge on both paths, a nonempty one trips on the first binding — so
  // ok-ness and codes must agree exactly. At small nonzero budgets the
  // two paths enumerate in different orders and may legitimately trip at
  // different points; the invariant is weaker but still sharp: a failure
  // on either side is exactly kResourceExhausted, and whenever both
  // complete the answers are identical.
  Schema schema = MustParseSchema(kSchema);
  std::mt19937_64 rng(77);
  RandomQueryParams params = FullParams();
  GeneratorParams state_params;
  state_params.objects_per_class = 4;
  State state = GenerateRandomState(schema, state_params);

  int compared = 0;
  while (compared < 200) {
    ConjunctiveQuery query = GenerateRandomQuery(schema, rng, params);
    if (!CheckWellFormed(schema, query).ok()) continue;
    for (uint64_t budget : {uint64_t{0}, uint64_t{1}, uint64_t{7}}) {
      EvalOptions interpreted;
      interpreted.enable_compilation = false;
      interpreted.max_assignments = budget;
      EvalOptions compiled;
      compiled.enable_compilation = true;
      compiled.max_assignments = budget;
      StatusOr<std::vector<Oid>> walker = Evaluate(state, query, interpreted);
      StatusOr<std::vector<Oid>> vm = Evaluate(state, query, compiled);
      if (budget == 0) {
        ASSERT_EQ(walker.ok(), vm.ok()) << QueryToString(schema, query);
      }
      for (const StatusOr<std::vector<Oid>>* leg : {&walker, &vm}) {
        if (!leg->ok()) {
          EXPECT_EQ(leg->status().code(), StatusCode::kResourceExhausted)
              << QueryToString(schema, query) << " budget=" << budget;
        }
      }
      if (walker.ok() && vm.ok()) {
        EXPECT_EQ(*walker, *vm)
            << QueryToString(schema, query) << " budget=" << budget;
      }
    }
    ++compared;
  }
}

TEST(CompileDifferentialTest, PreTrippedCancellationAgrees) {
  Schema schema = MustParseSchema(kSchema);
  std::mt19937_64 rng(99);
  RandomQueryParams params = FullParams();
  GeneratorParams state_params;
  State state = GenerateRandomState(schema, state_params);

  CancellationToken expired = CancellationToken::AfterMillis(0);
  int compared = 0;
  while (compared < 50) {
    ConjunctiveQuery query = GenerateRandomQuery(schema, rng, params);
    if (!CheckWellFormed(schema, query).ok()) continue;
    for (bool compiled : {false, true}) {
      EvalOptions options;
      options.enable_compilation = compiled;
      options.cancel = &expired;
      StatusOr<std::vector<Oid>> result = Evaluate(state, query, options);
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
      EXPECT_TRUE(IsRetryable(result.status().code()));
    }
    ++compared;
  }
}

TEST(CompileDifferentialTest, ContainmentVerdictsAgreeWithInterpretedScan) {
  // Random terminal pairs through Contained() with the compiled subset
  // scan on vs. off: verdicts and error codes must be identical. The
  // negative-atom pool makes a good fraction of the pairs exercise the
  // Thm 3.1 subset scan rather than the Cor 3.4 fast path.
  Schema schema = MustParseSchema(kSchema);
  std::mt19937_64 rng(4242);
  RandomQueryParams params = FullParams();

  int compared = 0;
  while (compared < 300) {
    ConjunctiveQuery q1 = GenerateRandomQuery(schema, rng, params);
    ConjunctiveQuery q2 = GenerateRandomQuery(schema, rng, params);
    if (!CheckWellFormed(schema, q1).ok()) continue;
    if (!CheckWellFormed(schema, q2).ok()) continue;

    ContainmentOptions interpreted;
    interpreted.enable_compilation = false;
    ContainmentOptions compiled;
    compiled.enable_compilation = true;
    StatusOr<bool> slow = Contained(schema, q1, q2, interpreted);
    StatusOr<bool> fast = Contained(schema, q1, q2, compiled);
    ASSERT_EQ(slow.ok(), fast.ok())
        << QueryToString(schema, q1) << " vs " << QueryToString(schema, q2)
        << "\ninterpreted: " << slow.status().ToString()
        << "\ncompiled: " << fast.status().ToString();
    if (slow.ok()) {
      EXPECT_EQ(*slow, *fast)
          << QueryToString(schema, q1) << " ⊆ " << QueryToString(schema, q2);
    } else {
      EXPECT_EQ(slow.status().code(), fast.status().code());
    }
    ++compared;
  }
}

}  // namespace
}  // namespace oocq
