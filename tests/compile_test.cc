// Unit tests for the query-compilation subsystem (src/compile/): program
// structure the compiler emits, VM semantics against the tree walker's
// 3-valued ground truth, budget/cancellation status parity, the compiled
// Thm 3.1 subset scan, and the session ProgramCache — including the
// never-memoize / never-persist contract for cancelled compiled scans
// (mirroring containment_cache_concurrency_test.cc).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compile/compiler.h"
#include "compile/program.h"
#include "compile/program_cache.h"
#include "compile/vm.h"
#include "core/containment.h"
#include "core/containment_cache.h"
#include "state/evaluation.h"
#include "state/index.h"
#include "state/indexed_evaluation.h"
#include "support/cancellation.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class CompileTest : public ::testing::Test {
 protected:
  CompileTest() : state_(&schema_) {
    c_ = schema_.FindClass("C").value();
    e_ = schema_.FindClass("E").value();
    f_ = schema_.FindClass("F").value();
  }

  Schema schema_ = MustParseSchema(R"(
schema Eval {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");
  State state_;
  ClassId c_, e_, f_;

  compile::CompiledQuery MustCompile(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    StatusOr<compile::CompiledQuery> program =
        compile::CompileQuery(schema_, query);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program.ok() ? *std::move(program) : compile::CompiledQuery{};
  }

  /// Compiled answers vs. the interpreted tree walker, which must agree.
  std::vector<Oid> BothPaths(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    EvalOptions interpreted;
    interpreted.enable_compilation = false;
    StatusOr<std::vector<Oid>> walker = Evaluate(state_, query, interpreted);
    EXPECT_TRUE(walker.ok()) << walker.status().ToString();

    compile::CompiledQuery program = MustCompile(text);
    StatusOr<std::vector<Oid>> vm = compile::ExecuteCompiled(program, state_);
    EXPECT_TRUE(vm.ok()) << vm.status().ToString();
    EXPECT_EQ(*walker, *vm) << "compiled/interpreted divergence on " << text;
    return vm.ok() ? *vm : std::vector<Oid>{};
  }
};

// ---- Program structure -------------------------------------------------

TEST_F(CompileTest, OneLevelPerVariableAndEmit) {
  compile::CompiledQuery program =
      MustCompile("{ x | exists u (x in C & u in E & u = x.A) }");
  EXPECT_EQ(program.num_vars, 2u);
  ASSERT_EQ(program.levels.size(), 2u);
  std::string listing = program.DebugString();
  EXPECT_NE(listing.find("scan_extent"), std::string::npos) << listing;
  EXPECT_NE(listing.find("emit"), std::string::npos) << listing;
}

TEST_F(CompileTest, EqualityAttributeBecomesBindFromSlot) {
  // u = x.A: once x is bound, u has exactly one candidate — the compiler
  // must emit a bind generator, not a scan + filter.
  compile::CompiledQuery program =
      MustCompile("{ x | exists u (x in C & u in E & u = x.A) }");
  bool has_bind = false;
  for (const compile::Level& level : program.levels) {
    if (level.gen.code == compile::OpCode::kBindFromSlotRef) has_bind = true;
  }
  EXPECT_TRUE(has_bind) << program.DebugString();
}

TEST_F(CompileTest, MembershipBecomesSetMemberScan) {
  compile::CompiledQuery program =
      MustCompile("{ x | exists u (x in C & u in E & u in x.S) }");
  bool has_set_scan = false;
  for (const compile::Level& level : program.levels) {
    if (level.gen.code == compile::OpCode::kScanSetMembers) {
      has_set_scan = true;
    }
  }
  EXPECT_TRUE(has_set_scan) << program.DebugString();
}

TEST_F(CompileTest, SlotLoadsAreHoistedOncePerOwner) {
  // Two tests dereference x.A; the program must load the slot once.
  compile::CompiledQuery program = MustCompile(
      "{ x | exists u exists w (x in C & u in E & w in F & u = x.A "
      "& w != x.A) }");
  size_t loads = 0;
  for (const compile::Level& level : program.levels) {
    loads += level.loads.size();
  }
  EXPECT_EQ(program.slots.size(), 1u) << program.DebugString();
  EXPECT_EQ(loads, 1u) << program.DebugString();
}

// ---- VM semantics vs. the tree walker ---------------------------------

TEST_F(CompileTest, VmMatchesWalkerOnNullSemantics) {
  Oid c1 = *state_.AddObject(c_);
  Oid c2 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  *state_.AddObject(f_);
  // c1.A = e1, c1.S = {e1}; c2 all-null.
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "A", Value::Ref(e1)));
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({e1})));
  (void)c2;

  // Ex 3.1: null A is unknown, not false.
  EXPECT_EQ(BothPaths("{ x | exists u (x in C & u in E & u = x.A) }"),
            (std::vector<Oid>{c1}));
  // Ex 3.3: null S makes notin unknown; e1 ∈ c1.S makes it false.
  EXPECT_TRUE(
      BothPaths("{ x | exists u (x in C & u in E & u notin x.S) }").empty());
  // Membership through the set slot.
  EXPECT_EQ(BothPaths("{ x | exists u (x in C & u in E & u in x.S) }"),
            (std::vector<Oid>{c1}));
  // Non-range atoms.
  BothPaths("{ x | x in D & x notin F }");
  // Inequality with an unknown operand fails.
  BothPaths("{ x | exists u (x in C & u in E & x.A != u) }");
}

TEST_F(CompileTest, VmMatchesWalkerWithIndex) {
  Oid c1 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "A", Value::Ref(e1)));
  StateIndex index(state_);

  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A) }");
  compile::CompiledQuery program = MustCompile(
      "{ x | exists u (x in C & u in E & u = x.A) }");
  StatusOr<std::vector<Oid>> with_index =
      compile::ExecuteCompiled(program, state_, &index);
  ASSERT_TRUE(with_index.ok()) << with_index.status().ToString();
  EXPECT_EQ(*with_index, (std::vector<Oid>{c1}));
}

TEST_F(CompileTest, ConstantAtomsMatchInternedPayloadsExactly) {
  Schema schema = MustParseSchema(R"(
schema K { class C { N: Int; } })");
  State state(&schema);
  ClassId c = schema.FindClass("C").value();
  Oid c1 = *state.AddObject(c);
  Oid c2 = *state.AddObject(c);
  Oid three = state.InternInt(3);
  OOCQ_ASSERT_OK(state.SetAttribute(c1, "N", Value::Ref(three)));
  OOCQ_ASSERT_OK(state.SetAttribute(c2, "N", Value::Ref(state.InternInt(4))));

  ConjunctiveQuery query =
      MustParseQuery(schema, "{ x | x in C & x.N = 3 }");
  EvalOptions interpreted;
  interpreted.enable_compilation = false;
  StatusOr<std::vector<Oid>> walker = Evaluate(state, query, interpreted);
  ASSERT_TRUE(walker.ok());
  StatusOr<compile::CompiledQuery> program =
      compile::CompileQuery(schema, query);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  StatusOr<std::vector<Oid>> vm = compile::ExecuteCompiled(*program, state);
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(*walker, *vm);
  EXPECT_EQ(vm->size(), 1u);
}

// ---- Status parity: budgets and cancellation --------------------------

TEST_F(CompileTest, MaxAssignmentsTripsOnBothPaths) {
  for (int i = 0; i < 8; ++i) *state_.AddObject(e_);
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y exists z (x in E & y in E & z in E) }");
  EvalOptions options;
  options.max_assignments = 10;  // 8^3 bindings in any order exceed this
  options.enable_compilation = false;
  StatusOr<std::vector<Oid>> walker = Evaluate(state_, query, options);
  ASSERT_FALSE(walker.ok());
  EXPECT_EQ(walker.status().code(), StatusCode::kResourceExhausted);

  options.enable_compilation = true;
  StatusOr<std::vector<Oid>> vm = Evaluate(state_, query, options);
  ASSERT_FALSE(vm.ok());
  EXPECT_EQ(vm.status().code(), walker.status().code());
  EXPECT_EQ(vm.status().message(), walker.status().message());
}

TEST_F(CompileTest, EmptyPoolAnswersBeforeChargingTheBudget) {
  // No E objects at all: the walker returns {} before trying a binding,
  // even under max_assignments = 0. The VM must do the same.
  *state_.AddObject(c_);
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E) }");
  EvalOptions options;
  options.max_assignments = 0;
  for (bool compiled : {false, true}) {
    options.enable_compilation = compiled;
    StatusOr<std::vector<Oid>> result = Evaluate(state_, query, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->empty());
  }
}

TEST_F(CompileTest, CancelledExecutionIsRetryableDeadlineExceeded) {
  *state_.AddObject(e_);
  compile::CompiledQuery program = MustCompile("{ x | x in E }");
  CancellationToken expired = CancellationToken::AfterMillis(0);
  compile::ExecOptions options;
  options.cancel = &expired;
  StatusOr<std::vector<Oid>> result =
      compile::ExecuteCompiled(program, state_, nullptr, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetryable(result.status().code()));
}

// ---- The compiled Thm 3.1 subset scan ---------------------------------

/// The Cor 3.2 exponential workload of the chaos suite: k set-valued
/// attributes make the subset scan walk up to 2^(k-1) membership masks.
std::string HeavySchemaText(int k) {
  std::string text = "schema Heavy {\n  class D { }\n  class C { ";
  for (int i = 0; i < k; ++i) text += "S" + std::to_string(i) + ": {D}; ";
  text += "}\n}";
  return text;
}

std::string HeavyQ1(int k) {
  std::string q1 = "{ x | exists y exists u (x in D & y in C & u in D";
  for (int i = 0; i < k; ++i) q1 += " & u in y.S" + std::to_string(i);
  q1 += " & x notin y.S0) }";
  return q1;
}

const char* HeavyQ2() {
  return "{ x | exists y (x in D & y in C & x notin y.S0) }";
}

TEST_F(CompileTest, CompiledSubsetScanMatchesInterpretedVerdictAndTotals) {
  for (int k : {2, 4, 8, 12}) {
    Schema schema = MustParseSchema(HeavySchemaText(k));
    ConjunctiveQuery q1 = MustParseQuery(schema, HeavyQ1(k));
    ConjunctiveQuery q2 = MustParseQuery(schema, HeavyQ2());

    ContainmentOptions interpreted;
    interpreted.enable_compilation = false;
    ContainmentStats interpreted_stats;
    StatusOr<bool> slow =
        Contained(schema, q1, q2, interpreted, &interpreted_stats);
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();

    ContainmentOptions compiled;
    compiled.enable_compilation = true;
    ContainmentStats compiled_stats;
    StatusOr<bool> fast = Contained(schema, q1, q2, compiled, &compiled_stats);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();

    EXPECT_EQ(*slow, *fast) << "k=" << k;
    // Tested + skipped is the full enumeration asked for — identical on
    // both paths even though the compiled scan never ran per-mask
    // mapping searches.
    EXPECT_EQ(interpreted_stats.membership_subsets +
                  interpreted_stats.membership_subsets_skipped,
              compiled_stats.membership_subsets +
                  compiled_stats.membership_subsets_skipped)
        << "k=" << k;
  }
}

TEST_F(CompileTest, CompiledSubsetScanHonorsBudgetWithRetryableStatus) {
  const int k = 20;
  Schema schema = MustParseSchema(HeavySchemaText(k));
  ConjunctiveQuery q1 = MustParseQuery(schema, HeavyQ1(k));
  ConjunctiveQuery q2 = MustParseQuery(schema, HeavyQ2());

  ResourceLimits limits;
  limits.max_subset_work_units = 1 << 10;
  ResourceBudget budget(limits);
  ContainmentOptions options;
  options.budget = &budget;
  StatusOr<bool> refused = Contained(schema, q1, q2, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(refused.status().code()));
}

// A cancelled compiled scan surfaces the token's retryable status and is
// neither memoized nor persisted: the mirror of the never-memoize tests
// in containment_cache_concurrency_test.cc, through the compiled path.
TEST_F(CompileTest, CancelledCompiledScanNeverMemoizedNeverPersisted) {
  const int k = 12;
  Schema schema = MustParseSchema(HeavySchemaText(k));
  ConjunctiveQuery q1 = MustParseQuery(schema, HeavyQ1(k));
  ConjunctiveQuery q2 = MustParseQuery(schema, HeavyQ2());

  ContainmentCache cache(&schema);
  CancellationToken expired = CancellationToken::AfterMillis(0);
  StatusOr<bool> cancelled = cache.Contained(q1, q2, nullptr, &expired);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(IsRetryable(cancelled.status().code()));

  // Never memoized: the error is not resident, and Export() (what the
  // durable catalog snapshots) carries nothing for the pair.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.Export(0).empty());

  // The retry the status promised recomputes and succeeds.
  StatusOr<bool> retried = cache.Contained(q1, q2);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
}

// ---- ProgramCache ------------------------------------------------------

TEST_F(CompileTest, ProgramCacheComputesOnceAndReturnsStableAddress) {
  compile::ProgramCache cache;
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in E }");
  const compile::CompiledQuery* first = cache.GetOrCompile(schema_, query);
  ASSERT_NE(first, nullptr);
  const compile::CompiledQuery* second = cache.GetOrCompile(schema_, query);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(CompileTest, ProgramCacheMemoizesStructuralFailures) {
  // 4097 variables exceeds the compiler's structural cap; the failure
  // must be memoized (size() grows) and keep answering nullptr.
  ConjunctiveQuery big;
  for (int v = 0; v < 4097; ++v) {
    big.AddVariable("v" + std::to_string(v));
    big.AddAtom(Atom::Range(static_cast<VarId>(v), {e_}));
  }
  StatusOr<compile::CompiledQuery> direct =
      compile::CompileQuery(schema_, big);
  ASSERT_FALSE(direct.ok());

  compile::ProgramCache cache;
  EXPECT_EQ(cache.GetOrCompile(schema_, big), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.GetOrCompile(schema_, big), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(CompileTest, ProgramCacheClearDropsEntries) {
  compile::ProgramCache cache;
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in E }");
  ASSERT_NE(cache.GetOrCompile(schema_, query), nullptr);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.GetOrCompile(schema_, query), nullptr);
}

}  // namespace
}  // namespace oocq
