// The chaos suite (ctest -L chaos, docs/robustness.md): every registered
// failpoint fires at least once across a full catalog + service + TCP
// workload with verdicts identical to a fault-free run; injected
// transient faults degrade with retryable statuses and the next attempt
// recovers; and resource budgets turn the 2^|T| subset scan into a
// retryable RESOURCE_EXHAUSTED instead of unbounded work.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "persist/catalog.h"
#include "replicate/fence.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "support/failpoint.h"
#include "support/file.h"
#include "support/resource_budget.h"
#include "test_util.h"

namespace oocq::server {
namespace {

using persist::DurableCatalog;
using persist::DurableCatalogOptions;
using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Reset(); }
  void TearDown() override { Failpoints::Reset(); }
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "oocq_chaos_" + name;
  StatusOr<std::vector<std::string>> names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }
  EXPECT_TRUE(MakeDirs(dir).ok());
  return dir;
}

std::shared_ptr<DurableCatalog> MustOpen(const std::string& dir) {
  DurableCatalogOptions options;
  options.data_dir = dir;
  options.snapshot_interval_s = 0;
  options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<DurableCatalog>> catalog =
      DurableCatalog::Open(std::move(options));
  OOCQ_EXPECT_OK(catalog.status());
  return catalog.ok() ? std::shared_ptr<DurableCatalog>(*std::move(catalog))
                      : nullptr;
}

/// A blocking test client over a real socket, reading "."-framed replies.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(const std::string& text) {
    return ::send(fd_, text.data(), text.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(text.size());
  }

  std::string ReadReply() {
    std::string reply;
    size_t line_start = 0;
    while (true) {
      size_t nl;
      while ((nl = buffer_.find('\n', line_start)) != std::string::npos) {
        std::string line = buffer_.substr(line_start, nl - line_start);
        line_start = nl + 1;
        if (line == ".") {
          reply = buffer_.substr(0, line_start);
          buffer_.erase(0, line_start);
          return reply;
        }
      }
      line_start = buffer_.size();
      char chunk[4096];
      ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

constexpr const char* kSchemaPayload =
    "schema S {\n"
    "  class A { }\n"
    "  class A1 under A { }\n"
    "  class A2 under A { }\n"
    "}\n"
    ".\n";

/// The Cor 3.2 exponential workload: k set-valued attributes make the
/// Thm 3.1 subset scan walk up to 2^(k-1) membership masks.
std::string HeavySchemaText(int k) {
  std::string text = "schema Heavy {\n  class D { }\n  class C { ";
  for (int i = 0; i < k; ++i) text += "S" + std::to_string(i) + ": {D}; ";
  text += "}\n}";
  return text;
}

std::string HeavyQ1(int k) {
  std::string q1 = "{ x | exists y exists u (x in D & y in C & u in D";
  for (int i = 0; i < k; ++i) q1 += " & u in y.S" + std::to_string(i);
  q1 += " & x notin y.S0) }";
  return q1;
}

const char* HeavyQ2() { return "{ x | exists y (x in D & y in C & x notin y.S0) }"; }

// Every failpoint in Failpoints::KnownNames() fires (delay:0 — a no-op
// action, so this doubles as the fault-free baseline) across one
// catalog-backed service + TCP workload, and the verdicts are the ones
// a run without any failpoints produces.
TEST_F(ChaosTest, EveryKnownFailpointFiresAcrossTheStack) {
  std::string spec;
  for (const std::string& name : Failpoints::KnownNames()) {
    if (!spec.empty()) spec += ",";
    spec += name + "=delay:0";
  }
  OOCQ_ASSERT_OK(Failpoints::Configure(spec));

  const std::string dir = FreshDir("coverage");
  {
    ServiceOptions service_options;
    service_options.catalog = MustOpen(dir);  // fires snapshot/load
    OocqService service(service_options);
    TcpServer server(&service);
    OOCQ_ASSERT_OK(server.Start());

    TestClient client(server.port());  // fires tcp/accept
    ASSERT_TRUE(client.connected());
    // SESSION NEW logs through the WAL: wal/append + wal/fsync. The
    // reads and the replies fire tcp/read / tcp/write.
    client.Send(std::string("SESSION NEW\n") + kSchemaPayload);
    EXPECT_EQ(client.ReadReply().rfind("OK session=s1", 0), 0u);
    // CONTAIN fires service/execute, pool/dispatch, cache/lookup and
    // core/subset_scan — and must still answer exactly contained=1.
    client.Send("CONTAIN s1\n{ x | x in A1 }\n{ x | x in A }\n.\n");
    EXPECT_EQ(client.ReadReply().rfind("OK contained=1", 0), 0u);
    client.Send("CONTAIN s1\n{ x | x in A1 }\n{ x | x in A2 }\n.\n");
    EXPECT_EQ(client.ReadReply().rfind("OK contained=0", 0), 0u);
    // STATE + EVAL route through the compiled evaluation fast path,
    // which checks compile/exec on entry.
    client.Send("STATE s1\nstate { o1: A1 { } }\n.\n");
    EXPECT_EQ(client.ReadReply().rfind("OK", 0), 0u);
    client.Send("EVAL s1\n{ x | x in A }\n.\n");
    EXPECT_EQ(client.ReadReply().rfind("OK", 0), 0u);
    // REPL STATE fires repl/ship (the WAL-shipping gate).
    client.Send("REPL STATE\n");
    EXPECT_EQ(client.ReadReply().rfind("OK epoch=", 0), 0u);
    client.Send("QUIT\n");
    client.ReadReply();
    // The router's probe path dials through the net/partition seam (the
    // labeled per-peer black-hole, docs/robustness.md#partitions).
    replicate::PeerStatus probed = replicate::ProbePeer(
        "127.0.0.1:" + std::to_string(server.port()), 1000);
    EXPECT_TRUE(probed.reachable);
    server.Stop();

    // The follower-side points: applying a shipped record fires
    // repl/apply; an actual readonly → primary transition fires
    // repl/promote.
    persist::Record shipped;
    shipped.type = persist::RecordType::kDefineQuery;
    shipped.session_id = "s1";
    shipped.name = "shipped";
    shipped.text = "{ x | x in A1 }";
    OOCQ_EXPECT_OK(service.ApplyReplicated(shipped));
    // Observing a higher replication term fences the primary: fires
    // repl/fence on the step-down path.
    OOCQ_EXPECT_OK(service.Demote(2, ""));
    EXPECT_TRUE(service.fenced());
    ServiceOptions follower_options;
    follower_options.read_only = true;
    OocqService follower(follower_options);
    OOCQ_EXPECT_OK(follower.Promote());
    // ~OocqService takes the final snapshot: fires snapshot/write.
  }

  std::vector<std::string> hit = Failpoints::HitNames();
  for (const std::string& name : Failpoints::KnownNames()) {
    EXPECT_NE(std::find(hit.begin(), hit.end(), name), hit.end())
        << "failpoint never fired: " << name;
  }
}

// The compile/exec failpoint forces every compiled fast path (the
// evaluation VM and the Thm 3.1 compiled subset scan) to bail out to the
// interpreters mid-request. The bailout is the behavior under test:
// verdicts and answers must match the compiled run exactly, and the
// injected fault must be invisible to the caller (OK status, no retry).
TEST_F(ChaosTest, CompileExecBailoutMatchesInterpreters) {
  ServiceOptions service_options;
  // No memoization: both runs must actually reach the decision engine.
  service_options.engine.cache.enabled = false;
  OocqService service(service_options);
  StatusOr<std::string> sid = service.CreateSession(HeavySchemaText(8));
  OOCQ_ASSERT_OK(sid.status());
  OOCQ_ASSERT_OK(service.LoadState(*sid, "state { d1: D { } d2: D { } }"));

  Request contain;
  contain.kind = RequestKind::kContained;
  contain.session_id = *sid;
  contain.query = HeavyQ1(8);       // non-membership in Q2 → subset scan
  contain.query2 = HeavyQ2();
  Request eval;
  eval.kind = RequestKind::kEvaluate;
  eval.session_id = *sid;
  eval.query = "{ x | x in D }";

  Response compiled_contain = service.Execute(contain);
  Response compiled_eval = service.Execute(eval);
  OOCQ_EXPECT_OK(compiled_contain.status);
  OOCQ_EXPECT_OK(compiled_eval.status);

  OOCQ_ASSERT_OK(Failpoints::Configure("compile/exec=error"));
  Response interpreted_contain = service.Execute(contain);
  Response interpreted_eval = service.Execute(eval);
  OOCQ_EXPECT_OK(interpreted_contain.status);
  OOCQ_EXPECT_OK(interpreted_eval.status);

  EXPECT_EQ(compiled_contain.verdict, interpreted_contain.verdict);
  EXPECT_EQ(compiled_eval.verdict, interpreted_eval.verdict);
  EXPECT_EQ(compiled_eval.body, interpreted_eval.body);
}

// An injected transient fault in the request path degrades with a
// retryable status; the next attempt recovers with the right verdict —
// the server-side half of the oocq_client --retries contract.
TEST_F(ChaosTest, InjectedExecuteFaultIsRetryableAndRecovers) {
  ServiceOptions service_options;
  service_options.failpoints = "service/execute=error@1";
  OocqService service(service_options);
  StatusOr<std::string> sid = service.CreateSession(
      "schema S { class A { } class A1 under A { } }");
  OOCQ_ASSERT_OK(sid.status());

  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = *sid;
  request.query = "{ x | x in A1 }";
  request.query2 = "{ x | x in A }";

  Response faulted = service.Execute(request);
  EXPECT_EQ(faulted.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(faulted.status.code()));

  Response retried = service.Execute(request);
  OOCQ_EXPECT_OK(retried.status);
  EXPECT_TRUE(retried.verdict);
}

// A WAL fsync fault fails the mutation cleanly — the session is rolled
// back, not half-registered — and the retry succeeds and persists.
TEST_F(ChaosTest, InjectedWalFsyncFaultRollsBackThenRetrySucceeds) {
  const std::string dir = FreshDir("walfault");
  ServiceOptions service_options;
  service_options.catalog = MustOpen(dir);
  service_options.failpoints = "wal/fsync=error@1";
  OocqService service(service_options);

  StatusOr<std::string> failed = service.CreateSession(
      "schema S { class A { } class A1 under A { } }");
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(IsRetryable(failed.status().code())) << failed.status().ToString();
  EXPECT_EQ(service.session_count(), 0u);

  StatusOr<std::string> retried = service.CreateSession(
      "schema S { class A { } class A1 under A { } }");
  OOCQ_ASSERT_OK(retried.status());
  EXPECT_EQ(service.session_count(), 1u);
}

// A retryable injected error is never memoized: the cache recomputes on
// retry instead of serving the fault forever.
TEST_F(ChaosTest, RetryableCacheFaultIsNotMemoized) {
  ServiceOptions service_options;
  service_options.failpoints = "cache/lookup=error@1";
  OocqService service(service_options);
  StatusOr<std::string> sid = service.CreateSession(
      "schema S { class A { } class A1 under A { } }");
  OOCQ_ASSERT_OK(sid.status());

  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = *sid;
  request.query = "{ x | x in A1 }";
  request.query2 = "{ x | x in A }";

  Response faulted = service.Execute(request);
  EXPECT_TRUE(IsRetryable(faulted.status.code())) << faulted.status.ToString();
  Response retried = service.Execute(request);
  OOCQ_EXPECT_OK(retried.status);
  EXPECT_TRUE(retried.verdict);
}

// The budget-capped 2^|T| workload: a subset-work ceiling turns the
// Cor 3.2 exponential scan into a prompt retryable RESOURCE_EXHAUSTED
// with bounded work, and the OptimizeReport records the enforcement.
TEST_F(ChaosTest, BudgetCapsTheExponentialSubsetScan) {
  const int k = 20;  // up to 2^19 masks unbounded
  Schema schema = MustParseSchema(HeavySchemaText(k));
  ConjunctiveQuery q1 = MustParseQuery(schema, HeavyQ1(k));
  ConjunctiveQuery q2 = MustParseQuery(schema, HeavyQ2());

  EngineOptions options;
  options.limits.max_subset_work_units = 1 << 10;
  QueryOptimizer optimizer(schema, options);
  StatusOr<bool> refused = optimizer.IsContained(q1, q2);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsRetryable(refused.status().code()));
  EXPECT_NE(refused.status().message().find("max_subset_work_units"),
            std::string::npos);
}

// The same cap through the service: every over-budget item of a BATCH is
// shed item-by-item with RESOURCE_EXHAUSTED (surfaced in retryable=),
// while cheap items in the same batch still succeed.
TEST_F(ChaosTest, OversizedBatchIsShedItemByItem) {
  const int k = 16;
  ServiceOptions service_options;
  service_options.max_in_flight = 1;  // serialize: each item gets the
                                      // full (released) budget window
  service_options.budget.max_subset_work_units = 1 << 10;
  OocqService service(service_options);
  StatusOr<std::string> sid = service.CreateSession(HeavySchemaText(k));
  OOCQ_ASSERT_OK(sid.status());

  Request heavy;
  heavy.kind = RequestKind::kContained;
  heavy.session_id = *sid;
  heavy.query = HeavyQ1(k);
  heavy.query2 = HeavyQ2();
  Request cheap;
  cheap.kind = RequestKind::kSatisfiable;
  cheap.session_id = *sid;
  cheap.query = "{ x | x in D }";

  std::vector<Response> responses =
      service.ExecuteBatch({heavy, cheap, heavy, cheap});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kResourceExhausted);
  OOCQ_EXPECT_OK(responses[1].status);
  EXPECT_TRUE(responses[1].verdict);
  EXPECT_EQ(responses[2].status.code(), StatusCode::kResourceExhausted);
  OOCQ_EXPECT_OK(responses[3].status);
  // The shed requests count on the retryable metrics the METRICS verb
  // (and the BATCH retryable= field) surface.
  EXPECT_GE(service.metrics().CounterValue("server/resource_exhausted"), 2u);
}

// HEALTH over the wire: pending/completed/draining/sessions plus the
// budget line when a service-wide budget is armed.
TEST_F(ChaosTest, HealthVerbReportsProgressAndBudget) {
  ServiceOptions service_options;
  service_options.budget.max_resident_bytes = 1 << 20;
  OocqService service(service_options);
  TcpServer server(&service);
  OOCQ_ASSERT_OK(server.Start());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string("SESSION NEW\n") + kSchemaPayload);
  ASSERT_EQ(client.ReadReply().rfind("OK session=", 0), 0u);
  // One executed request so the progress counter is nonzero (session
  // mutations are registry operations, not pooled requests).
  client.Send("CONTAIN s1\n{ x | x in A1 }\n{ x | x in A }\n.\n");
  ASSERT_EQ(client.ReadReply().rfind("OK contained=1", 0), 0u);
  client.Send("HEALTH\n");
  std::string health = client.ReadReply();
  EXPECT_EQ(health.rfind("OK pending=", 0), 0u) << health;
  EXPECT_NE(health.find(" completed=1"), std::string::npos) << health;
  EXPECT_NE(health.find(" draining=0"), std::string::npos) << health;
  EXPECT_NE(health.find(" sessions=1"), std::string::npos) << health;
  EXPECT_NE(health.find("budget: resident_bytes="), std::string::npos)
      << health;
  client.Send("QUIT\n");
  client.ReadReply();
  server.Stop();
}

// The resident-bytes axis: a catalog cap refuses new sessions with a
// retryable status, and dropping a session returns its bytes.
TEST_F(ChaosTest, ResidentBytesCapRefusesAndDropReleases) {
  ServiceOptions service_options;
  service_options.budget.max_resident_bytes = 64;
  OocqService service(service_options);

  const std::string schema_text =
      "schema S { class A { } class A1 under A { } }";  // 45 bytes
  StatusOr<std::string> first = service.CreateSession(schema_text);
  OOCQ_ASSERT_OK(first.status());

  StatusOr<std::string> refused = service.CreateSession(schema_text);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.session_count(), 1u);

  OOCQ_ASSERT_OK(service.DropSession(*first));
  StatusOr<std::string> after_drop = service.CreateSession(schema_text);
  OOCQ_ASSERT_OK(after_drop.status());
}

}  // namespace
}  // namespace oocq::server
