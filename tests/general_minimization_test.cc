// Tests for the general-query minimization extension (the §5 open
// problem, implemented best-effort with verified folding).

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/general_minimization.h"
#include "core/optimizer.h"
#include "query/printer.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class GeneralMinimizationTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Gen {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");
};

TEST_F(GeneralMinimizationTest, PositiveQueryBehavesLikePositivePipeline) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v in x.S) }");
  StatusOr<GeneralMinimizationReport> report =
      MinimizeConjunctiveQuery(schema_, query);
  OOCQ_ASSERT_OK(report.status());
  ASSERT_EQ(report->minimized.disjuncts.size(), 1u);
  EXPECT_EQ(report->minimized.disjuncts[0].num_vars(), 2u);
  EXPECT_EQ(report->variables_removed, 1u);
}

TEST_F(GeneralMinimizationTest, FoldsRedundantWitnessDespiteInequality) {
  // The inequality x != w does not involve u/v; the duplicate membership
  // witness still folds, and the fold verifies as equivalent.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists w exists u exists v (x in C & w in C & u in E & "
      "v in E & u in x.S & v in x.S & x != w) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> folded =
      FoldTerminalQueryVerified(schema_, query, {}, &removed);
  OOCQ_ASSERT_OK(folded.status());
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(folded->num_vars(), 3u);
  StatusOr<bool> equivalent = EquivalentQueries(schema_, query, *folded);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(GeneralMinimizationTest, InequalityWitnessesDoNotOverFold) {
  // u != v forces two distinct witnesses; u, v must both survive. (The
  // non-contradictory mapping u,v -> u would map 'u != v' to 'u != u',
  // which is contradicted, so no fold is even proposed.)
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v in x.S & u != v) }");
  StatusOr<ConjunctiveQuery> folded = FoldTerminalQueryVerified(schema_, query);
  OOCQ_ASSERT_OK(folded.status());
  EXPECT_EQ(folded->num_vars(), 3u);
}

TEST_F(GeneralMinimizationTest, Example32FoldsChainInequality) {
  // Ex 3.2: Q1 (x != y & y != z) is equivalent to Q2 (x != y): the
  // mapping z -> x is non-contradictory and verifies.
  Schema schema = MustParseSchema(testing::kExample32Schema);
  ConjunctiveQuery q1 = MustParseQuery(
      schema,
      "{ x | exists y exists z (x in C & y in C & z in C & x != y & "
      "y != z) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> folded =
      FoldTerminalQueryVerified(schema, q1, {}, &removed);
  OOCQ_ASSERT_OK(folded.status());
  EXPECT_EQ(folded->num_vars(), 2u);
  EXPECT_EQ(removed, 1u);
  ConjunctiveQuery q2 = MustParseQuery(
      schema, "{ x | exists y (x in C & y in C & x != y) }");
  StatusOr<bool> equivalent = EquivalentQueries(schema, *folded, q2);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(GeneralMinimizationTest, Example32PairwiseDistinctStays) {
  // Ex 3.2's Q3 needs three pairwise-distinct objects: nothing folds.
  Schema schema = MustParseSchema(testing::kExample32Schema);
  ConjunctiveQuery q3 = MustParseQuery(
      schema,
      "{ x | exists y exists z (x in C & y in C & z in C & x != y & "
      "y != z & x != z) }");
  StatusOr<ConjunctiveQuery> folded = FoldTerminalQueryVerified(schema, q3);
  OOCQ_ASSERT_OK(folded.status());
  EXPECT_EQ(folded->num_vars(), 3u);
}

TEST_F(GeneralMinimizationTest, NonMembershipPreserved) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u in x.S & "
      "v notin x.S) }");
  StatusOr<ConjunctiveQuery> folded = FoldTerminalQueryVerified(schema_, query);
  OOCQ_ASSERT_OK(folded.status());
  // Folding v onto u would map 'v notin x.S' onto the contradicted
  // 'u notin x.S'; nothing folds.
  EXPECT_EQ(folded->num_vars(), 3u);
}

TEST_F(GeneralMinimizationTest, ExpansionPlusRedundancyAcrossHierarchy) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists u (x in D & y in D & u in C & x in u.S & "
      "y in u.S & x != y) }");
  StatusOr<GeneralMinimizationReport> report =
      MinimizeConjunctiveQuery(schema_, query);
  OOCQ_ASSERT_OK(report.status());
  // x, y each expand over {E, F}: 4 disjuncts, all satisfiable. (E,F)
  // and (F,E) have their inequality normalized away (cross-class).
  EXPECT_EQ(report->raw_disjuncts, 4u);
  EXPECT_EQ(report->satisfiable_disjuncts, 4u);
  EXPECT_GE(report->minimized.disjuncts.size(), 1u);
  // Sound: answers unchanged on random states.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    GeneratorParams params;
    params.seed = seed;
    State state = GenerateRandomState(schema_, params);
    std::vector<Oid> original = *Evaluate(state, query);
    std::vector<Oid> minimized = *EvaluateUnion(state, report->minimized);
    EXPECT_EQ(original, minimized);
  }
}

TEST_F(GeneralMinimizationTest, OptimizerRoutesGeneralQueries) {
  QueryOptimizer optimizer(schema_);
  StatusOr<OptimizeReport> report = optimizer.Optimize(MustParseQuery(
      schema_,
      "{ x | exists w exists u exists v (x in C & w in C & u in E & "
      "v in E & u in x.S & v in x.S & x != w) }"));
  OOCQ_ASSERT_OK(report.status());
  EXPECT_FALSE(report->exact);
  EXPECT_EQ(report->details.variables_removed, 1u);
}

TEST_F(GeneralMinimizationTest, SoundnessOnRandomNegativeQueries) {
  // Cross-validate against evaluation for a handful of hand-picked
  // negative-atom queries.
  const char* queries[] = {
      "{ x | exists y (x in E & y in C & x notin y.S) }",
      "{ x | exists y exists z (x in E & y in E & z in C & x != y & "
      "x in z.S & y in z.S) }",
      "{ x | exists y exists u (x in D & y in C & u in E & x in y.S & "
      "u in y.S & x != u) }",
  };
  for (const char* text : queries) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    StatusOr<GeneralMinimizationReport> report =
        MinimizeConjunctiveQuery(schema_, query);
    OOCQ_ASSERT_OK(report.status());
    for (uint64_t seed = 0; seed < 3; ++seed) {
      GeneratorParams params;
      params.seed = 100 + seed;
      State state = GenerateRandomState(schema_, params);
      std::vector<Oid> original = *Evaluate(state, query);
      std::vector<Oid> minimized = *EvaluateUnion(state, report->minimized);
      EXPECT_EQ(original, minimized) << text;
    }
  }
}

// --------------------------- atom removal ---------------------------

TEST_F(GeneralMinimizationTest, EqualityChainFullyDissolves) {
  // x = y & y = z & x = z over one class: every equality is removable in
  // turn — with the equalities gone, the bound variables are
  // unconstrained witnesses and the query collapses to { x | x in E }.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists y exists z (x in E & y in E & z in E & x = y & y = z & "
      "x = z) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> reduced =
      RemoveRedundantAtoms(schema_, query, {}, &removed);
  OOCQ_ASSERT_OK(reduced.status());
  EXPECT_EQ(removed, 3u);
  StatusOr<bool> equivalent = EquivalentQueries(schema_, query, *reduced);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
  ConjunctiveQuery simple = MustParseQuery(schema_, "{ x | x in E }");
  StatusOr<bool> same = EquivalentQueries(schema_, *reduced, simple);
  OOCQ_ASSERT_OK(same.status());
  EXPECT_TRUE(*same);
}

TEST_F(GeneralMinimizationTest, MembershipThroughEquivalenceRemoved) {
  // One membership atom is implied via u = v; then u = v itself
  // dissolves (u becomes an unconstrained witness).
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u = v & "
      "u in x.S & v in x.S) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> reduced =
      RemoveRedundantAtoms(schema_, query, {}, &removed);
  OOCQ_ASSERT_OK(reduced.status());
  EXPECT_EQ(removed, 2u);
  int memberships = 0;
  for (const Atom& atom : reduced->atoms()) {
    if (atom.kind() == AtomKind::kMembership) ++memberships;
  }
  EXPECT_EQ(memberships, 1);
  StatusOr<bool> equivalent = EquivalentQueries(schema_, query, *reduced);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(GeneralMinimizationTest, NecessaryAtomsSurvive) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in F & u = x.A & "
      "u in x.S & v in x.S & u != v) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> reduced =
      RemoveRedundantAtoms(schema_, query, {}, &removed);
  OOCQ_ASSERT_OK(reduced.status());
  // u != v is cross-class (normalized away, not counted as a removal);
  // every remaining atom is load-bearing.
  for (const Atom& atom : reduced->atoms()) {
    EXPECT_NE(atom.kind(), AtomKind::kInequality);
  }
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(reduced->atoms().size(), 6u);  // 3 ranges + A-eq + 2 memberships.
}

TEST_F(GeneralMinimizationTest, StrandingRemovalSkipped) {
  // Removing 'u = x.A' would strand nothing here (x.A occurs only in that
  // atom) — but it genuinely changes the query (x.A non-null), so it must
  // survive on semantic grounds too.
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A) }");
  uint64_t removed = 0;
  StatusOr<ConjunctiveQuery> reduced =
      RemoveRedundantAtoms(schema_, query, {}, &removed);
  OOCQ_ASSERT_OK(reduced.status());
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(reduced->atoms().size(), 3u);
}

TEST_F(GeneralMinimizationTest, AtomRemovalSoundOnStates) {
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists v (x in C & u in E & v in E & u = v & "
      "u in x.S & v in x.S & u = x.A & v = x.A) }");
  StatusOr<ConjunctiveQuery> reduced = RemoveRedundantAtoms(schema_, query);
  OOCQ_ASSERT_OK(reduced.status());
  for (uint64_t seed = 0; seed < 4; ++seed) {
    GeneratorParams params;
    params.seed = 50 + seed;
    State state = GenerateRandomState(schema_, params);
    EXPECT_EQ(*Evaluate(state, query), *Evaluate(state, *reduced));
  }
}

}  // namespace
}  // namespace oocq
