// Unit tests for the non-contradictory variable mapping search.

#include <gtest/gtest.h>

#include "core/derivability.h"
#include "core/mapping.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class MappingTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Map {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");

  QueryAnalysis Analyze(const ConjunctiveQuery& query) {
    StatusOr<QueryAnalysis> analysis = QueryAnalysis::Create(schema_, query);
    EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
    return *std::move(analysis);
  }

  MappingResult Find(const std::string& from_text, const std::string& to_text,
                     MappingConstraints constraints = {}) {
    ConjunctiveQuery from = MustParseQuery(schema_, from_text);
    ConjunctiveQuery to = MustParseQuery(schema_, to_text);
    QueryAnalysis analysis = Analyze(to);
    return FindNonContradictoryMapping(schema_, from, analysis, constraints);
  }
};

TEST_F(MappingTest, IdentityMappingFound) {
  MappingResult result = Find("{ x | x in E }", "{ x | x in E }");
  ASSERT_TRUE(result.found());
  EXPECT_EQ((*result.image)[0], 0u);
}

TEST_F(MappingTest, RangeClassMustMatchExactly) {
  // E vs F: no candidate for the free variable.
  EXPECT_FALSE(Find("{ x | x in E }", "{ x | x in F }").found());
}

TEST_F(MappingTest, FoldsTwoVariablesOntoOne) {
  MappingResult result =
      Find("{ x | exists y (x in E & y in E) }", "{ x | x in E }");
  ASSERT_TRUE(result.found());
  EXPECT_EQ((*result.image)[0], 0u);
  EXPECT_EQ((*result.image)[1], 0u);
}

TEST_F(MappingTest, FreeVariableConditionViaEquivalence) {
  // Condition (i): the free variable may land on any variable equivalent
  // to the target free variable.
  MappingResult result = Find(
      "{ x | x in E }",
      "{ x | exists y (x in E & y in E & x = y) }");
  ASSERT_TRUE(result.found());
  VarId image = (*result.image)[0];
  EXPECT_TRUE(image == 0u || image == 1u);
}

TEST_F(MappingTest, FreeVariableCannotLandElsewhere) {
  MappingResult result = Find(
      "{ x | x in E }", "{ x | exists y (x in E & y in E) }");
  ASSERT_TRUE(result.found());
  EXPECT_EQ((*result.image)[0], 0u);
}

TEST_F(MappingTest, EqualityAtomMustBeDerivable) {
  // from: u = x.A; to has no x.A term.
  MappingResult result = Find(
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists u (x in C & u in E) }");
  EXPECT_FALSE(result.found());

  result = Find(
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists u (x in C & u in E & u = x.A) }");
  EXPECT_TRUE(result.found());
}

TEST_F(MappingTest, MembershipAtomMustBeDerivable) {
  MappingResult result = Find(
      "{ x | exists u (x in C & u in E & u in x.S) }",
      "{ x | exists u (x in C & u in E & u notin x.S) }");
  EXPECT_FALSE(result.found());
}

TEST_F(MappingTest, InequalityNeedsDistinctClasses) {
  // Mapping x != y onto a target where both candidates collapse fails.
  MappingResult result = Find(
      "{ x | exists y (x in E & y in E & x != y) }",
      "{ x | exists y (x in E & y in E & x = y) }");
  EXPECT_FALSE(result.found());

  result = Find(
      "{ x | exists y (x in E & y in E & x != y) }",
      "{ x | exists y (x in E & y in E & x != y) }");
  EXPECT_TRUE(result.found());
}

TEST_F(MappingTest, InequalityToleratedWithoutExplicitAtom) {
  // 'Does not contradict' only needs distinct equivalence classes in the
  // target, not an inequality atom.
  MappingResult result = Find(
      "{ x | exists y (x in E & y in E & x != y) }",
      "{ x | exists y (x in E & y in E) }");
  EXPECT_TRUE(result.found());
}

TEST_F(MappingTest, ForbiddenTargetExcluded) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E) }");
  QueryAnalysis analysis = Analyze(query);
  MappingConstraints constraints;
  constraints.forbidden_target = 1;
  MappingResult result =
      FindNonContradictoryMapping(schema_, query, analysis, constraints);
  ASSERT_TRUE(result.found());
  EXPECT_EQ((*result.image)[1], 0u);  // y had to fold onto x.
}

TEST_F(MappingTest, ForbiddenTargetMakesSearchFail) {
  // y in x.S cannot fold onto x (different classes), so forbidding y
  // leaves no mapping.
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in C & y in E & y in x.S) }");
  QueryAnalysis analysis = Analyze(query);
  MappingConstraints constraints;
  constraints.forbidden_target = 1;
  EXPECT_FALSE(
      FindNonContradictoryMapping(schema_, query, analysis, constraints)
          .found());
}

TEST_F(MappingTest, StepBudgetExhaustion) {
  ConjunctiveQuery from = MustParseQuery(
      schema_,
      "{ a | exists b exists c exists d (a in E & b in E & c in E & "
      "d in E & a != b & b != c & c != d) }");
  ConjunctiveQuery to = MustParseQuery(
      schema_,
      "{ a | exists b exists c exists d (a in E & b in E & c in E & "
      "d in E) }");
  QueryAnalysis analysis = Analyze(to);
  MappingConstraints constraints;
  constraints.max_steps = 2;
  MappingResult result =
      FindNonContradictoryMapping(schema_, from, analysis, constraints);
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.found());
}

TEST_F(MappingTest, StepsAreCounted) {
  MappingResult result = Find("{ x | x in E }", "{ x | x in E }");
  EXPECT_GT(result.steps, 0u);
}

TEST_F(MappingTest, NonRangeAtomCheckedStatically) {
  // from has x notin F; image class E is not under F: fine.
  MappingResult result = Find("{ x | x in E & x notin F }",
                              "{ x | x in E }");
  EXPECT_TRUE(result.found());
}

}  // namespace
}  // namespace oocq
