// Unit tests for the Thm 2.2 satisfiability procedure: every
// unsatisfiability condition (a)-(g) of DESIGN.md §5.3, plus the
// normalization of satisfiable terminal queries.

#include <gtest/gtest.h>

#include "core/satisfiability.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class SatisfiabilityTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema Sat {
  class D { }
  class E under D { }
  class F under D { }
  class Other { }
  class C { A: D; S: {D}; OnlyE: E; SE: {E}; }
})");

  bool Satisfiable(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    return CheckSatisfiable(schema_, query).satisfiable;
  }
};

TEST_F(SatisfiabilityTest, TrivialQuerySatisfiable) {
  EXPECT_TRUE(Satisfiable("{ x | x in C }"));
}

TEST_F(SatisfiabilityTest, ConditionA_CrossClassEquality) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists y (x in E & y in F & x = y) }"));
}

TEST_F(SatisfiabilityTest, ConditionA_TransitiveCrossClassEquality) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists y exists z (x in E & y in E & z in F & x = y & "
      "y = z) }"));
}

TEST_F(SatisfiabilityTest, SameClassEqualityFine) {
  EXPECT_TRUE(Satisfiable("{ x | exists y (x in E & y in E & x = y) }"));
}

TEST_F(SatisfiabilityTest, ConditionB_MissingAttribute) {
  // Example 4.1's Q1/Q4 pattern: B is not an attribute of T1.
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in D & u in E & u = x.A) }"));
}

TEST_F(SatisfiabilityTest, ConditionB_SetAttributeUsedAsObject) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in C & u in E & u = x.S) }"));
}

TEST_F(SatisfiabilityTest, ConditionB_ObjectTermOutsideType) {
  // x.OnlyE has type E; equating it to an F variable is unsatisfiable.
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in C & u in F & u = x.OnlyE) }"));
}

TEST_F(SatisfiabilityTest, ConditionB_ObjectTermInsideTypeOk) {
  EXPECT_TRUE(Satisfiable(
      "{ x | exists u (x in C & u in E & u = x.OnlyE) }"));
  EXPECT_TRUE(Satisfiable(
      "{ x | exists u (x in C & u in F & u = x.A) }"));
}

TEST_F(SatisfiabilityTest, ConditionC_ObjectAttributeUsedAsSet) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in C & u in E & u in x.A) }"));
}

TEST_F(SatisfiabilityTest, ConditionC_MissingSetAttribute) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in D & u in E & u in x.S) }"));
}

TEST_F(SatisfiabilityTest, ConditionD_MembershipTypeIncompatible) {
  // Example 4.1's Q3/Q6 pattern: x.SE is a set of E; an F element cannot
  // be a member.
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in C & u in F & u in x.SE) }"));
  EXPECT_TRUE(Satisfiable(
      "{ x | exists u (x in C & u in E & u in x.SE) }"));
}

TEST_F(SatisfiabilityTest, ConditionD_OtherClassIncompatible) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in C & u in Other & u in x.S) }"));
}

TEST_F(SatisfiabilityTest, ConditionE_ContradictoryInequality) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists y (x in E & y in E & x = y & x != y) }"));
}

TEST_F(SatisfiabilityTest, ConditionE_CongruenceInequality) {
  // x = y forces x.A = y.A; with u = x.A and v = y.A, u != v explodes.
  EXPECT_FALSE(Satisfiable(
      "{ x | exists y exists u exists v (x in C & y in C & u in E & "
      "v in E & x = y & u = x.A & v = y.A & u != v) }"));
}

TEST_F(SatisfiabilityTest, InequalityChainSatisfiable) {
  // Example 3.2's Q1: only two distinct objects are needed.
  EXPECT_TRUE(Satisfiable(
      "{ x | exists y exists z (x in E & y in E & z in E & x != y & "
      "y != z) }"));
}

TEST_F(SatisfiabilityTest, ConditionF_MembershipConflict) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u (x in C & u in E & u in x.S & u notin x.S) }"));
}

TEST_F(SatisfiabilityTest, ConditionF_ConflictThroughEquality) {
  EXPECT_FALSE(Satisfiable(
      "{ x | exists u exists v (x in C & u in E & v in E & u = v & "
      "u in x.S & v notin x.S) }"));
}

TEST_F(SatisfiabilityTest, NonMembershipAloneFine) {
  EXPECT_TRUE(Satisfiable(
      "{ x | exists u (x in C & u in E & u notin x.S) }"));
}

TEST_F(SatisfiabilityTest, ConditionG_NonRangeConflict) {
  EXPECT_FALSE(Satisfiable("{ x | x in E & x notin D }"));
  EXPECT_FALSE(Satisfiable("{ x | x in E & x notin E }"));
}

TEST_F(SatisfiabilityTest, ConditionG_NonRangeCompatible) {
  EXPECT_TRUE(Satisfiable("{ x | x in E & x notin F|Other }"));
}

TEST_F(SatisfiabilityTest, UnsatReasonIsInformative) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in D & u in E & u = x.A) }");
  SatisfiabilityResult result = CheckSatisfiable(schema_, query);
  ASSERT_FALSE(result.satisfiable);
  EXPECT_NE(result.reason.find("'A'"), std::string::npos);
}

// --------------------------- Normalization ---------------------------

TEST_F(SatisfiabilityTest, NormalizeRemovesNonRangeAtoms) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | x in E & x notin F|Other }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_EQ(normalized->atoms().size(), 1u);
  EXPECT_EQ(normalized->atoms()[0].kind(), AtomKind::kRange);
}

TEST_F(SatisfiabilityTest, NormalizeRemovesCrossClassInequality) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in F & x != y) }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_EQ(normalized->atoms().size(), 2u);  // Only the range atoms.
  EXPECT_TRUE(normalized->IsPositive());
}

TEST_F(SatisfiabilityTest, NormalizeKeepsSameClassInequality) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in E & x != y) }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_FALSE(normalized->IsPositive());
}

TEST_F(SatisfiabilityTest, NormalizeKeepsTypeTrivialNonMembership) {
  // Even though an Other object can never be in x.S, the atom forces x.S
  // to be non-null under 3-valued logic (Ex 3.3) and must survive.
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in Other & u notin x.S) }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  bool has_non_membership = false;
  for (const Atom& atom : normalized->atoms()) {
    if (atom.kind() == AtomKind::kNonMembership) has_non_membership = true;
  }
  EXPECT_TRUE(has_non_membership);
}

TEST_F(SatisfiabilityTest, NormalizeRemovesCrossClassAttributeInequality) {
  // u = x.OnlyE puts x.OnlyE in class E; an inequality against an F
  // variable is implied true.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ x | exists u exists w (x in C & u in E & w in F & u = x.OnlyE & "
      "w != x.OnlyE) }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_TRUE(normalized->IsPositive());
}

TEST_F(SatisfiabilityTest, NormalizeRejectsUnsatisfiable) {
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in F & x = y) }");
  EXPECT_EQ(NormalizeTerminalQuery(schema_, query).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SatisfiabilityTest, GeneralSatisfiabilityThroughExpansion) {
  // Non-terminal query: x in D is satisfiable via E or F.
  ConjunctiveQuery query = MustParseQuery(schema_, "{ x | x in D }");
  StatusOr<bool> sat = CheckSatisfiableGeneral(schema_, query);
  OOCQ_ASSERT_OK(sat.status());
  EXPECT_TRUE(*sat);
}

TEST_F(SatisfiabilityTest, GeneralSatisfiabilityFindsTheOneGoodDisjunct) {
  // x in D & u = x.OnlyE: only... D has no attributes; use C-ranged x.
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in D & u = x.OnlyE) }");
  size_t witness = 999;
  StatusOr<bool> sat = CheckSatisfiableGeneral(schema_, query, &witness);
  OOCQ_ASSERT_OK(sat.status());
  EXPECT_TRUE(*sat);
  // u expands over {E, F}; only u in E is satisfiable (OnlyE: E).
  EXPECT_LT(witness, 2u);
}

TEST_F(SatisfiabilityTest, GeneralSatisfiabilityAllDisjunctsDead) {
  // Every expansion of u dies: u = x.OnlyE with u forced into F.
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in F & u = x.OnlyE) }");
  StatusOr<bool> sat = CheckSatisfiableGeneral(schema_, query);
  OOCQ_ASSERT_OK(sat.status());
  EXPECT_FALSE(*sat);
}

TEST_F(SatisfiabilityTest, GeneralSatisfiabilityRejectsIllFormed) {
  ConjunctiveQuery query;
  query.AddVariable("x");  // No range atom.
  EXPECT_EQ(CheckSatisfiableGeneral(schema_, query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SatisfiabilityTest, NormalizeDeduplicatesAtoms) {
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E & x = y & y = x) }");
  StatusOr<ConjunctiveQuery> normalized =
      NormalizeTerminalQuery(schema_, query);
  OOCQ_ASSERT_OK(normalized.status());
  EXPECT_EQ(normalized->atoms().size(), 3u);
}

}  // namespace
}  // namespace oocq
