// The parallel engine's core guarantee: running the pipeline with 1, 2 or
// 8 threads produces byte-identical results — same minimized unions, same
// report counters, same containment verdicts, same cache traffic — on
// seeded random queries. Labeled `concurrency` so a TSan build can run it
// via `ctest -L concurrency`.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/containment.h"
#include "core/engine_options.h"
#include "core/minimization.h"
#include "core/optimizer.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "random_query.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

const char* const kSchema = R"(
schema ParDet {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
  class C1 under C { }
  class C2 under C { B: E; }
})";

EngineOptions WithThreads(uint32_t threads) {
  EngineOptions options;
  options.parallel.num_threads = threads;
  return options;
}

class ParallelDeterminism : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(kSchema);

  std::optional<ConjunctiveQuery> Draw(std::mt19937_64& rng,
                                       bool allow_negative) {
    RandomQueryParams params;
    params.terminal_only = false;
    params.max_vars = 4;
    params.allow_negative = allow_negative;
    ConjunctiveQuery query = GenerateRandomQuery(schema_, rng, params);
    if (!CheckWellFormed(schema_, query).ok()) return std::nullopt;
    return query;
  }
};

TEST_P(ParallelDeterminism, MinimizationReportsIdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng, /*allow_negative=*/false);
    if (!query.has_value() || !query->IsPositive()) continue;

    StatusOr<MinimizationReport> baseline =
        MinimizePositiveQuery(schema_, *query, WithThreads(1));
    for (uint32_t threads : kThreadCounts) {
      StatusOr<MinimizationReport> report =
          MinimizePositiveQuery(schema_, *query, WithThreads(threads));
      ASSERT_EQ(report.ok(), baseline.ok()) << threads << " thread(s)";
      if (!report.ok()) {
        EXPECT_EQ(report.status().ToString(), baseline.status().ToString());
        continue;
      }
      EXPECT_EQ(UnionQueryToString(schema_, report->minimized),
                UnionQueryToString(schema_, baseline->minimized))
          << threads << " thread(s) on "
          << QueryToString(schema_, *query);
      EXPECT_EQ(report->raw_disjuncts, baseline->raw_disjuncts);
      EXPECT_EQ(report->satisfiable_disjuncts,
                baseline->satisfiable_disjuncts);
      EXPECT_EQ(report->nonredundant_disjuncts,
                baseline->nonredundant_disjuncts);
      EXPECT_EQ(report->variables_removed, baseline->variables_removed);
      // Positive-pipeline work counters are deterministic: the matrix has
      // no early exit and each fan-out task counts its own work.
      EXPECT_EQ(report->containment.augmentations,
                baseline->containment.augmentations);
      EXPECT_EQ(report->containment.membership_subsets,
                baseline->containment.membership_subsets);
      EXPECT_EQ(report->containment.mapping_searches,
                baseline->containment.mapping_searches);
      EXPECT_EQ(report->containment.mapping_steps,
                baseline->containment.mapping_steps);
    }
  }
}

TEST_P(ParallelDeterminism, OptimizerOutputIdenticalAcrossThreadCounts) {
  // Full facade, cache enabled: minimized union, exactness, costs and
  // cache hit/miss counters must not depend on the thread count (the
  // compute-once cache makes misses == distinct decisions).
  std::mt19937_64 rng(GetParam() + 5000);
  for (int round = 0; round < 5; ++round) {
    std::optional<ConjunctiveQuery> query = Draw(rng, /*allow_negative=*/false);
    if (!query.has_value()) continue;

    QueryOptimizer serial(schema_, WithThreads(1));
    StatusOr<OptimizeReport> baseline = serial.Optimize(*query);
    for (uint32_t threads : kThreadCounts) {
      QueryOptimizer optimizer(schema_, WithThreads(threads));
      StatusOr<OptimizeReport> report = optimizer.Optimize(*query);
      ASSERT_EQ(report.ok(), baseline.ok()) << threads << " thread(s)";
      if (!report.ok()) continue;
      EXPECT_EQ(report->Summary(schema_), baseline->Summary(schema_))
          << threads << " thread(s) on " << QueryToString(schema_, *query);
      EXPECT_EQ(report->cache_hits, baseline->cache_hits);
      EXPECT_EQ(report->cache_misses, baseline->cache_misses);
    }
  }
}

TEST_P(ParallelDeterminism, ContainmentVerdictsIdenticalAcrossThreadCounts) {
  // General queries (negative atoms exercise the chunked 2^|T| subset
  // enumeration of Thm 3.1). Verdicts and errors must match the serial
  // run; work counters on early-exit paths may differ and are not
  // compared.
  std::mt19937_64 rng(GetParam() + 10000);
  for (int round = 0; round < 6; ++round) {
    std::optional<ConjunctiveQuery> q1 = Draw(rng, /*allow_negative=*/true);
    std::optional<ConjunctiveQuery> q2 = Draw(rng, /*allow_negative=*/true);
    if (!q1.has_value() || !q2.has_value()) continue;

    QueryOptimizer serial(schema_, WithThreads(1));
    StatusOr<bool> baseline = serial.IsContained(*q1, *q2);
    for (uint32_t threads : kThreadCounts) {
      QueryOptimizer optimizer(schema_, WithThreads(threads));
      StatusOr<bool> verdict = optimizer.IsContained(*q1, *q2);
      ASSERT_EQ(verdict.ok(), baseline.ok()) << threads << " thread(s)";
      if (verdict.ok()) {
        EXPECT_EQ(*verdict, *baseline)
            << threads << " thread(s) on "
            << QueryToString(schema_, *q1) << " vs "
            << QueryToString(schema_, *q2);
      } else {
        EXPECT_EQ(verdict.status().ToString(), baseline.status().ToString());
      }
    }
  }
}

TEST_P(ParallelDeterminism, UnionMinimizationIdenticalAcrossThreadCounts) {
  std::mt19937_64 rng(GetParam() + 15000);
  for (int round = 0; round < 4; ++round) {
    UnionQuery input;
    for (int d = 0; d < 3; ++d) {
      std::optional<ConjunctiveQuery> q = Draw(rng, /*allow_negative=*/false);
      if (q.has_value() && q->IsPositive()) {
        input.disjuncts.push_back(*std::move(q));
      }
    }
    if (input.disjuncts.empty()) continue;

    StatusOr<MinimizationReport> baseline =
        MinimizePositiveUnion(schema_, input, WithThreads(1));
    for (uint32_t threads : kThreadCounts) {
      StatusOr<MinimizationReport> report =
          MinimizePositiveUnion(schema_, input, WithThreads(threads));
      ASSERT_EQ(report.ok(), baseline.ok()) << threads << " thread(s)";
      if (!report.ok()) continue;
      EXPECT_EQ(UnionQueryToString(schema_, report->minimized),
                UnionQueryToString(schema_, baseline->minimized))
          << threads << " thread(s)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism,
                         ::testing::Range(uint64_t{0}, uint64_t{8}));

}  // namespace
}  // namespace oocq
