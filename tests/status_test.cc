// Unit tests for the Status/StatusOr error-handling substrate.

#include "support/status.h"

#include <gtest/gtest.h>

#include "support/status_macros.h"

namespace oocq {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("re").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("i").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("thing").message(), "thing");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad input").ToString(),
            "INVALID_ARGUMENT: bad input");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusCodeToString, AllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(value.status().code(), StatusCode::kOk);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> value = Status::NotFound("missing");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().message(), "missing");
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> value = std::make_unique<int>(7);
  ASSERT_TRUE(value.ok());
  std::unique_ptr<int> taken = *std::move(value);
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> value = std::string("hello");
  EXPECT_EQ(value->size(), 5u);
}

TEST(StatusOr, OkStatusConstructionBecomesInternalError) {
  // Constructing a StatusOr from an OK status is a bug; it degrades to an
  // internal error instead of silently pretending to hold a value.
  StatusOr<int> value{Status::Ok()};
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kInternal);
}

namespace macros {

Status Fails() { return Status::NotFound("inner"); }
Status Succeeds() { return Status::Ok(); }

Status Caller(bool fail) {
  OOCQ_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::InvalidArgument("after");
}

StatusOr<int> Inner(bool fail) {
  if (fail) return Status::NotFound("no int");
  return 5;
}

StatusOr<int> Outer(bool fail) {
  OOCQ_ASSIGN_OR_RETURN(int x, Inner(fail));
  return x + 1;
}

}  // namespace macros

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_EQ(macros::Caller(true).code(), StatusCode::kNotFound);
  EXPECT_EQ(macros::Caller(false).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacros, AssignOrReturn) {
  StatusOr<int> ok = macros::Outer(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 6);
  EXPECT_EQ(macros::Outer(true).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace oocq
