// Unit tests for the QueryOptimizer facade.

#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "query/printer.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class OptimizerTest : public ::testing::Test {
 protected:
  Schema schema_ = MustParseSchema(testing::kVehicleRentalSchema);
  QueryOptimizer optimizer_{schema_};
};

TEST_F(OptimizerTest, OptimizeTextParsesAndMinimizes) {
  StatusOr<OptimizeReport> report = optimizer_.OptimizeText(
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  OOCQ_ASSERT_OK(report.status());
  EXPECT_TRUE(report->exact);
  ASSERT_EQ(report->optimized.disjuncts.size(), 1u);
  EXPECT_EQ(report->original_cost.total, 4u);
  EXPECT_EQ(report->optimized_cost.total, 2u);
}

TEST_F(OptimizerTest, OptimizeTextParseErrorPropagates) {
  EXPECT_EQ(optimizer_.OptimizeText("{ x | x in Nowhere }").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(OptimizerTest, OptimizeNormalizesRaggedQueries) {
  // A variable with no range atom: the facade normalizes before §4.
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId y = query.AddVariable("y");
  query.AddAtom(Atom::Range(x, {schema_.FindClass("Auto").value()}));
  query.AddAtom(Atom::Equality(Term::Var(x), Term::Var(y)));
  StatusOr<OptimizeReport> report = optimizer_.Optimize(query);
  OOCQ_ASSERT_OK(report.status());
  ASSERT_EQ(report->optimized.disjuncts.size(), 1u);
  // The equated pair folds to a single variable.
  EXPECT_EQ(report->optimized.disjuncts[0].num_vars(), 1u);
}

TEST_F(OptimizerTest, UnsatisfiableQueryOptimizesToEmptyUnion) {
  StatusOr<OptimizeReport> report = optimizer_.OptimizeText(
      "{ x | exists y (x in Trailer & y in Discount & x in y.VehRented) }");
  OOCQ_ASSERT_OK(report.status());
  EXPECT_TRUE(report->optimized.disjuncts.empty());
  EXPECT_EQ(report->optimized_cost.total, 0u);
}

TEST_F(OptimizerTest, GeneralQueriesRouteThroughVerifiedFolding) {
  StatusOr<OptimizeReport> report = optimizer_.OptimizeText(
      "{ x | exists y exists z (x in Auto & y in Discount & z in Discount & "
      "x in y.VehRented & x in z.VehRented & y != z) }");
  OOCQ_ASSERT_OK(report.status());
  EXPECT_FALSE(report->exact);
  ASSERT_EQ(report->optimized.disjuncts.size(), 1u);
  // y != z pins both client witnesses: nothing may fold.
  EXPECT_EQ(report->optimized.disjuncts[0].num_vars(), 3u);
}

TEST_F(OptimizerTest, IsContainedAcrossHierarchy) {
  ConjunctiveQuery specific = MustParseQuery(
      schema_,
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
  ConjunctiveQuery general = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }");
  StatusOr<bool> forward = optimizer_.IsContained(specific, general);
  OOCQ_ASSERT_OK(forward.status());
  EXPECT_TRUE(*forward);
  StatusOr<bool> backward = optimizer_.IsContained(general, specific);
  OOCQ_ASSERT_OK(backward.status());
  EXPECT_FALSE(*backward);
}

TEST_F(OptimizerTest, IsEquivalentThroughTypingConstraints) {
  ConjunctiveQuery a = MustParseQuery(
      schema_,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  ConjunctiveQuery b = MustParseQuery(
      schema_,
      "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }");
  StatusOr<bool> equivalent = optimizer_.IsEquivalent(a, b);
  OOCQ_ASSERT_OK(equivalent.status());
  EXPECT_TRUE(*equivalent);
}

TEST_F(OptimizerTest, SummaryMentionsKeyNumbers) {
  StatusOr<OptimizeReport> report = optimizer_.OptimizeText(
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  OOCQ_ASSERT_OK(report.status());
  std::string summary = report->Summary(schema_);
  EXPECT_NE(summary.find("exact minimization"), std::string::npos);
  EXPECT_NE(summary.find("3 raw"), std::string::npos);
  EXPECT_NE(summary.find("4 -> 2"), std::string::npos);
  EXPECT_NE(summary.find("x in Auto"), std::string::npos);
}

TEST_F(OptimizerTest, OptimizedOutputReparses) {
  StatusOr<OptimizeReport> report = optimizer_.OptimizeText(
      "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }");
  OOCQ_ASSERT_OK(report.status());
  std::string printed = UnionQueryToString(schema_, report->optimized);
  StatusOr<UnionQuery> reparsed = ParseUnionQuery(schema_, printed);
  OOCQ_ASSERT_OK(reparsed.status());
  EXPECT_EQ(reparsed->disjuncts.size(), report->optimized.disjuncts.size());
}

}  // namespace
}  // namespace oocq
