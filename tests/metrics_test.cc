// The metrics registry (support/metrics.h): power-of-two histogram
// bucketing, exactness under concurrent increments, scope semantics, and
// the determinism contract — work counters of a positive-pipeline run are
// identical at 1, 2 and 8 threads. Labeled `concurrency` so a TSan build
// exercises the sharded registry (ctest -L concurrency).

#include "support/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_options.h"
#include "core/optimizer.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::kVehicleRentalSchema;
using ::oocq::testing::MustParseSchema;

TEST(MetricsTest, HistogramBucketIndexEdges) {
  // Bucket 0 holds the value 0; bucket i holds bit_width-i values,
  // i.e. the range [2^(i-1), 2^i).
  EXPECT_EQ(MetricHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(MetricHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(MetricHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(MetricHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(MetricHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(MetricHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(MetricHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(MetricHistogram::BucketIndex((uint64_t{1} << 63) - 1), 63u);
  EXPECT_EQ(MetricHistogram::BucketIndex(uint64_t{1} << 63), 64u);
  EXPECT_EQ(MetricHistogram::BucketIndex(UINT64_MAX), 64u);

  EXPECT_EQ(MetricHistogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(MetricHistogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(MetricHistogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(MetricHistogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(MetricHistogram::BucketLowerBound(64), uint64_t{1} << 63);

  // Every bucket's lower bound maps back into that bucket.
  for (size_t i = 0; i < MetricHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(MetricHistogram::BucketIndex(MetricHistogram::BucketLowerBound(i)),
              i);
  }
}

TEST(MetricsTest, HistogramRecordAggregates) {
  MetricHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), UINT64_MAX);  // empty sentinel
  for (uint64_t value : {0u, 1u, 2u, 3u, 100u}) histogram.Record(value);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 106u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 100u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // 0
  EXPECT_EQ(histogram.bucket(1), 1u);  // 1
  EXPECT_EQ(histogram.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(histogram.bucket(7), 1u);  // 100 in [64, 128)
}

TEST(MetricsTest, RegistrySnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.Add("zeta", 3);
  registry.Add("alpha", 1);
  registry.Add("alpha", 1);
  registry.Record("mid", 9);
  EXPECT_EQ(registry.CounterValue("alpha"), 2u);
  EXPECT_EQ(registry.CounterValue("never_touched"), 0u);

  MetricsRegistry::Snapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "zeta");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "mid");
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 9u);

  std::string json = registry.JsonString();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\":2"), std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry registry;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Resolve once, then increment lock-free — the hot-path idiom.
      MetricCounter* counter = registry.Counter("shared/counter");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        registry.Record("shared/histogram", i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(registry.CounterValue("shared/counter"), kThreads * kPerThread);
  MetricHistogram* histogram = registry.Histogram("shared/histogram");
  EXPECT_EQ(histogram->count(), kThreads * kPerThread);
  EXPECT_EQ(histogram->min(), 0u);
  EXPECT_EQ(histogram->max(), kPerThread - 1);
}

TEST(MetricsTest, ScopeFirstWinsAndRoutesFreeFunctions) {
  EXPECT_EQ(ActiveMetrics(), nullptr);
  MetricAdd("dropped", 1);  // no scope: silently discarded
  MetricsRegistry outer_registry;
  {
    MetricsScope outer(&outer_registry);
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(ActiveMetrics(), &outer_registry);
    MetricsRegistry inner_registry;
    {
      MetricsScope inner(&inner_registry);
      EXPECT_FALSE(inner.active());
      MetricAdd("routed", 1);  // still lands in the outer registry
    }
    EXPECT_EQ(ActiveMetrics(), &outer_registry);  // inner dtor didn't tear down
    MetricAdd("routed", 1);
    MetricRecord("sampled", 5);
  }
  EXPECT_EQ(ActiveMetrics(), nullptr);
  EXPECT_EQ(outer_registry.CounterValue("dropped"), 0u);
  EXPECT_EQ(outer_registry.CounterValue("routed"), 2u);
  EXPECT_EQ(outer_registry.Histogram("sampled")->count(), 1u);
}

TEST(MetricsTest, ScopedPhaseTimerCountsCallsAndTime) {
  MetricsRegistry registry;
  {
    MetricsScope scope(&registry);
    { ScopedPhaseTimer timer("phase/test"); }
    { ScopedPhaseTimer timer("phase/test"); }
  }
  EXPECT_EQ(registry.CounterValue("phase/test.calls"), 2u);
  // Wall time is scheduling-dependent; only existence is asserted.
  MetricsRegistry::Snapshot snap = registry.Snap();
  bool saw_ns = false;
  for (const MetricsRegistry::CounterSnapshot& counter : snap.counters) {
    if (counter.name == "phase/test.ns") saw_ns = true;
  }
  EXPECT_TRUE(saw_ns);
}

// Work counters (counts of algorithmic events) must be byte-identical
// across thread counts on the positive pipeline — the docs/parallelism.md
// contract extended to observability. Timing (*.ns) and scheduling
// artifacts (pool/*) are excluded by name.
bool IsDeterministicCounter(const std::string& name) {
  if (name.size() > 3 && name.compare(name.size() - 3, 3, ".ns") == 0) {
    return false;
  }
  return name.rfind("pool/", 0) != 0;
}

TEST(MetricsTest, PipelineWorkCountersIdenticalAcrossThreadCounts) {
  Schema schema = MustParseSchema(kVehicleRentalSchema);
  const char* query =
      "{ x | exists y (x in Vehicle & y in Client & x in y.VehRented) }";

  auto run = [&](uint32_t threads) {
    EngineOptions options;
    options.parallel.num_threads = threads;
    options.observability.metrics = true;
    QueryOptimizer optimizer(schema, options);
    StatusOr<OptimizeReport> report = optimizer.OptimizeText(query);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->metrics.enabled);
    std::map<std::string, uint64_t> counters;
    for (const auto& [name, value] : report->metrics.counters) {
      if (IsDeterministicCounter(name)) counters[name] = value;
    }
    return counters;
  };

  std::map<std::string, uint64_t> baseline = run(1);
  EXPECT_GT(baseline.count("containment/calls"), 0u);
  EXPECT_GT(baseline.count("expand/raw_disjuncts"), 0u);
  EXPECT_GT(baseline.count("phase/expand.calls"), 0u);
  for (uint32_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(run(threads), baseline) << threads << " thread(s)";
  }
}

TEST(MetricsTest, OptimizeReportsPhaseTableWhenEnabled) {
  Schema schema = MustParseSchema(kVehicleRentalSchema);
  const char* query =
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }";

  EngineOptions plain;
  QueryOptimizer bare(schema, plain);
  StatusOr<OptimizeReport> without = bare.OptimizeText(query);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_FALSE(without->metrics.enabled);
  EXPECT_EQ(without->Summary(schema).find("phases:"), std::string::npos);

  EngineOptions observed;
  observed.observability.metrics = true;
  QueryOptimizer instrumented(schema, observed);
  StatusOr<OptimizeReport> with = instrumented.OptimizeText(query);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_TRUE(with->metrics.enabled);
  ASSERT_FALSE(with->metrics.phases.empty());
  EXPECT_EQ(with->metrics.phases.front().name, "well_form");

  std::string summary = with->Summary(schema);
  EXPECT_NE(summary.find("phases:"), std::string::npos);
  EXPECT_NE(summary.find("expansion (Prop 2.1)"), std::string::npos);
  EXPECT_NE(summary.find("redundancy removal (Thm 4.1/4.2)"),
            std::string::npos);
}

TEST(MetricsTest, HistogramQuantileEmptyAndSinglePoint) {
  MetricsRegistry registry;
  MetricsRegistry::Snapshot empty = registry.Snap();
  MetricsRegistry::HistogramSnapshot none;
  none.buckets.assign(MetricHistogram::kNumBuckets, 0);
  EXPECT_EQ(HistogramQuantile(none, 0.5), 0.0);

  registry.Record("one", 42);
  MetricsRegistry::HistogramSnapshot one = registry.Snap().histograms[0];
  // Every quantile of a single sample is that sample: the interpolation
  // clamps to the observed [min, max].
  for (double q : {0.01, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(HistogramQuantile(one, q), 42.0) << q;
  }
  (void)empty;
}

TEST(MetricsTest, HistogramQuantileOrderedAndClamped) {
  MetricsRegistry registry;
  // 1000 samples 1..1000: p50 must land near 500 within one power-of-two
  // bucket ([512, 1024) spans the true median's bucket boundary).
  for (uint64_t v = 1; v <= 1000; ++v) registry.Record("lat", v);
  MetricsRegistry::HistogramSnapshot lat = registry.Snap().histograms[0];
  const double p50 = HistogramQuantile(lat, 0.5);
  const double p90 = HistogramQuantile(lat, 0.9);
  const double p99 = HistogramQuantile(lat, 0.99);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, 1000.0);  // clamped to max
  EXPECT_EQ(HistogramQuantile(lat, 0.0), 1.0);
  EXPECT_EQ(HistogramQuantile(lat, 1.0), 1000.0);
}

TEST(MetricsTest, PrometheusStringShape) {
  MetricsRegistry registry;
  registry.Add("server/requests", 7);
  for (uint64_t v : {10u, 20u, 30u, 40u}) {
    registry.Record("server/latency_us", v);
  }
  const std::string text = PrometheusString(registry.Snap());
  // Counter: TYPE line plus one sample, names sanitized and prefixed.
  EXPECT_NE(text.find("# TYPE oocq_server_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("oocq_server_requests 7\n"), std::string::npos);
  // Histogram: summary with the three fixed quantiles plus sum/count and
  // min/max gauges.
  EXPECT_NE(text.find("# TYPE oocq_server_latency_us summary\n"),
            std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99"}) {
    EXPECT_NE(text.find("oocq_server_latency_us{quantile=\"" +
                        std::string(q) + "\"} "),
              std::string::npos)
        << q;
  }
  EXPECT_NE(text.find("oocq_server_latency_us_sum 100\n"), std::string::npos);
  EXPECT_NE(text.find("oocq_server_latency_us_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("oocq_server_latency_us_min 10\n"), std::string::npos);
  EXPECT_NE(text.find("oocq_server_latency_us_max 40\n"), std::string::npos);
}

TEST(MetricsTest, CachedSiteMacroFollowsScopeChanges) {
  // The per-site cache must re-resolve when the installed scope changes:
  // each registry gets exactly the events recorded during its own scope.
  MetricsRegistry first;
  {
    MetricsScope scope(&first);
    for (int i = 0; i < 3; ++i) OOCQ_METRIC_ADD("site/hits", 1);
    OOCQ_METRIC_RECORD("site/depth", 5);
  }
  MetricsRegistry second;
  {
    MetricsScope scope(&second);
    OOCQ_METRIC_ADD("site/hits", 1);
    OOCQ_METRIC_RECORD("site/depth", 9);
  }
  EXPECT_EQ(first.CounterValue("site/hits"), 3u);
  EXPECT_EQ(second.CounterValue("site/hits"), 1u);
  EXPECT_EQ(first.Snap().histograms[0].max, 5u);
  EXPECT_EQ(second.Snap().histograms[0].max, 9u);
  // No scope: the site is a closed gate, nothing leaks anywhere.
  OOCQ_METRIC_ADD("site/hits", 100);
  EXPECT_EQ(first.CounterValue("site/hits"), 3u);
  EXPECT_EQ(second.CounterValue("site/hits"), 1u);
}

}  // namespace
}  // namespace oocq
