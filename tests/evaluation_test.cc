// Unit tests for the 3-valued-logic evaluator, including the null
// semantics the containment theory depends on (Ex 3.1 / Ex 3.3).

#include <gtest/gtest.h>

#include "state/evaluation.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;

class EvaluationTest : public ::testing::Test {
 protected:
  EvaluationTest() : state_(&schema_) {
    c_ = schema_.FindClass("C").value();
    e_ = schema_.FindClass("E").value();
    f_ = schema_.FindClass("F").value();
  }

  Schema schema_ = MustParseSchema(R"(
schema Eval {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");
  State state_;
  ClassId c_, e_, f_;

  std::vector<Oid> Eval(const std::string& text) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    StatusOr<std::vector<Oid>> result = Evaluate(state_, query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : std::vector<Oid>{};
  }
};

TEST_F(EvaluationTest, RangeAtomFiltersByClass) {
  Oid e1 = *state_.AddObject(e_);
  *state_.AddObject(f_);
  EXPECT_EQ(Eval("{ x | x in E }"), (std::vector<Oid>{e1}));
  EXPECT_EQ(Eval("{ x | x in D }").size(), 2u);
}

TEST_F(EvaluationTest, EmptyExtentGivesEmptyAnswer) {
  EXPECT_TRUE(Eval("{ x | x in E }").empty());
}

TEST_F(EvaluationTest, EqualityOnAttribute) {
  Oid e1 = *state_.AddObject(e_);
  Oid c1 = *state_.AddObject(c_);
  Oid c2 = *state_.AddObject(c_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "A", Value::Ref(e1)));
  // c2.A stays null.
  EXPECT_EQ(Eval("{ x | exists u (x in C & u in E & u = x.A) }"),
            (std::vector<Oid>{c1}));
  (void)c2;
}

TEST_F(EvaluationTest, NullAttributeIsUnknownNotFalse) {
  // Example 3.1's semantics: z = y.A selects objects with a NON-NULL A.
  Oid c1 = *state_.AddObject(c_);
  *state_.AddObject(e_);
  // c1.A null: no answer, even though an E object exists.
  EXPECT_TRUE(Eval("{ x | exists u (x in C & u in E & u = x.A) }").empty());
  (void)c1;
}

TEST_F(EvaluationTest, InequalityWithNullIsUnknown) {
  Oid c1 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  // x.A is null: x.A != u is unknown, not true.
  EXPECT_TRUE(Eval("{ x | exists u (x in C & u in E & x.A != u) }").empty());
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "A", Value::Ref(e1)));
  // Now x.A = e1, and e1 != e1 is false: still empty.
  EXPECT_TRUE(Eval("{ x | exists u (x in C & u in E & x.A != u) }").empty());
  Oid e2 = *state_.AddObject(e_);
  // e2 differs from e1: answer appears.
  EXPECT_EQ(Eval("{ x | exists u (x in C & u in E & x.A != u) }"),
            (std::vector<Oid>{c1}));
  (void)e2;
}

TEST_F(EvaluationTest, MembershipSemantics) {
  Oid c1 = *state_.AddObject(c_);
  Oid c2 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({e1})));
  OOCQ_ASSERT_OK(state_.SetAttribute(c2, "S", Value::Set({})));
  EXPECT_EQ(Eval("{ x | exists u (x in C & u in E & u in x.S) }"),
            (std::vector<Oid>{c1}));
}

TEST_F(EvaluationTest, NonMembershipNullSetIsUnknown) {
  // Example 3.3's semantics: u notin x.S requires x.S non-null.
  Oid c1 = *state_.AddObject(c_);
  Oid c2 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({})));
  // c2.S stays null: only c1 answers.
  EXPECT_EQ(Eval("{ x | exists u (x in C & u in E & u notin x.S) }"),
            (std::vector<Oid>{c1}));
  // Put e1 inside c1.S: no answers at all.
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({e1})));
  EXPECT_TRUE(
      Eval("{ x | exists u (x in C & u in E & u notin x.S) }").empty());
  (void)c2;
}

TEST_F(EvaluationTest, NonRangeAtom) {
  Oid e1 = *state_.AddObject(e_);
  Oid f1 = *state_.AddObject(f_);
  EXPECT_EQ(Eval("{ x | x in D & x notin F }"), (std::vector<Oid>{e1}));
  (void)f1;
}

TEST_F(EvaluationTest, InequalityNeedsTwoObjects) {
  // Example 3.2's semantics.
  Oid e1 = *state_.AddObject(e_);
  EXPECT_TRUE(
      Eval("{ x | exists y exists z (x in E & y in E & z in E & x != y & "
           "y != z) }")
          .empty());
  Oid e2 = *state_.AddObject(e_);
  // Two objects satisfy x != y & y != z (z = x).
  EXPECT_EQ(Eval("{ x | exists y exists z (x in E & y in E & z in E & "
                 "x != y & y != z) }")
                .size(),
            2u);
  // But not the pairwise-distinct Q3.
  EXPECT_TRUE(
      Eval("{ x | exists y exists z (x in E & y in E & z in E & x != y & "
           "y != z & x != z) }")
          .empty());
  Oid e3 = *state_.AddObject(e_);
  EXPECT_EQ(Eval("{ x | exists y exists z (x in E & y in E & z in E & "
                 "x != y & y != z & x != z) }")
                .size(),
            3u);
  (void)e1;
  (void)e2;
  (void)e3;
}

TEST_F(EvaluationTest, ClassDisjunctionRange) {
  Oid e1 = *state_.AddObject(e_);
  Oid f1 = *state_.AddObject(f_);
  *state_.AddObject(c_);
  std::vector<Oid> result = Eval("{ x | x in E|F }");
  EXPECT_EQ(result, (std::vector<Oid>{e1, f1}));
}

TEST_F(EvaluationTest, AnswersAreDeduplicated) {
  Oid c1 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  Oid e2 = *state_.AddObject(e_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({e1, e2})));
  // Two witnesses for u, one answer.
  EXPECT_EQ(Eval("{ x | exists u (x in C & u in E & u in x.S) }"),
            (std::vector<Oid>{c1}));
}

TEST_F(EvaluationTest, StatsCountWork) {
  for (int i = 0; i < 5; ++i) *state_.AddObject(e_);
  ConjunctiveQuery query =
      MustParseQuery(schema_, "{ x | exists y (x in E & y in E) }");
  EvalStats stats;
  StatusOr<std::vector<Oid>> result = Evaluate(state_, query, {}, &stats);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_EQ(stats.candidate_pool, 10u);  // 5 + 5.
  EXPECT_GE(stats.assignments_tried, 25u);
}

TEST_F(EvaluationTest, AssignmentCapEnforced) {
  for (int i = 0; i < 10; ++i) *state_.AddObject(e_);
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y exists z (x in E & y in E & z in E) }");
  EvalOptions options;
  options.max_assignments = 50;
  EXPECT_EQ(Evaluate(state_, query, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(EvaluationTest, JoinOrderDoesNotChangeAnswers) {
  for (int i = 0; i < 6; ++i) *state_.AddObject(e_);
  Oid c1 = *state_.AddObject(c_);
  Oid e_target = state_.Extent(e_)[2];
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({e_target})));
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ u | exists x (u in E & x in C & u in x.S) }");
  EvalOptions ordered;
  ordered.reorder_variables = true;
  EvalOptions declared;
  declared.reorder_variables = false;
  EvalStats ordered_stats, declared_stats;
  std::vector<Oid> a = *Evaluate(state_, query, ordered, &ordered_stats);
  std::vector<Oid> b = *Evaluate(state_, query, declared, &declared_stats);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, std::vector<Oid>{e_target});
  // The selective variable (x over one C object) binds first when
  // reordering: strictly less work.
  EXPECT_LT(ordered_stats.assignments_tried,
            declared_stats.assignments_tried);
}

TEST_F(EvaluationTest, JoinOrderPrefersConnectedVariables) {
  // Regression: a small-extent variable connected only to the largest
  // extent must not be bound before that extent's partner — selectivity
  // alone would defer every check to the innermost loop.
  for (int i = 0; i < 30; ++i) *state_.AddObject(e_);   // E: large
  for (int i = 0; i < 20; ++i) *state_.AddObject(c_);   // C: medium
  // Each C object holds one E element.
  std::vector<Oid> es = state_.Extent(e_);
  std::vector<Oid> cs = state_.Extent(c_);
  for (size_t i = 0; i < cs.size(); ++i) {
    OOCQ_ASSERT_OK(state_.SetAttribute(cs[i], "S", Value::Set({es[i]})));
    OOCQ_ASSERT_OK(state_.SetAttribute(cs[i], "A", Value::Ref(es[i])));
  }
  // u and w both hang off x, and the declaration order binds them first:
  // without reordering every check defers to the innermost loop. The
  // connectivity-aware order seeds with x (smallest pool) and keeps the
  // join checks early.
  ConjunctiveQuery query = MustParseQuery(
      schema_,
      "{ u | exists w exists x (u in E & w in E & x in C & u in x.S & "
      "w = x.A) }");
  EvalStats ordered, declared;
  EvalOptions no_reorder;
  no_reorder.reorder_variables = false;
  std::vector<Oid> a = *Evaluate(state_, query, {}, &ordered);
  std::vector<Oid> b = *Evaluate(state_, query, no_reorder, &declared);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), cs.size());  // One member per C object.
  // Connected order: at worst |C| + |C|*|E| + matches; the declaration
  // order pays |E|^2 * |C|-ish. Require a decisive improvement.
  EXPECT_LT(ordered.assignments_tried, declared.assignments_tried / 5);
}

TEST_F(EvaluationTest, UnionEvaluationMergesAnswers) {
  Oid e1 = *state_.AddObject(e_);
  Oid f1 = *state_.AddObject(f_);
  StatusOr<UnionQuery> query =
      ParseUnionQuery(schema_, "{ x | x in E } union { x | x in F }");
  OOCQ_ASSERT_OK(query.status());
  StatusOr<std::vector<Oid>> result = EvaluateUnion(state_, *query);
  OOCQ_ASSERT_OK(result.status());
  EXPECT_EQ(*result, (std::vector<Oid>{e1, f1}));
}

TEST_F(EvaluationTest, MembershipOnObjectTypedSlotIsUnknown) {
  // x.A is object-typed; u in x.A is a type error -> unknown -> no answer.
  Oid c1 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "A", Value::Ref(e1)));
  EXPECT_TRUE(Eval("{ x | exists u (x in C & u in E & u in x.A) }").empty());
}

TEST_F(EvaluationTest, EqualityOnSetTypedSlotIsUnknown) {
  Oid c1 = *state_.AddObject(c_);
  Oid e1 = *state_.AddObject(e_);
  OOCQ_ASSERT_OK(state_.SetAttribute(c1, "S", Value::Set({e1})));
  EXPECT_TRUE(Eval("{ x | exists u (x in C & u in E & u = x.S) }").empty());
}

}  // namespace
}  // namespace oocq
