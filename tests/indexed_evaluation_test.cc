// Tests for the StateIndex access paths and the index-nested-loop
// evaluator, including the core property: EvaluateIndexed always agrees
// with the naive Evaluate.

#include "state/indexed_evaluation.h"

#include <gtest/gtest.h>

#include <random>

#include "random_query.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "test_util.h"

namespace oocq {
namespace {

using ::oocq::testing::GenerateRandomQuery;
using ::oocq::testing::MustParseQuery;
using ::oocq::testing::MustParseSchema;
using ::oocq::testing::RandomQueryParams;

class StateIndexTest : public ::testing::Test {
 protected:
  StateIndexTest() : state_(&schema_) {
    c_ = schema_.FindClass("C").value();
    e_ = schema_.FindClass("E").value();
    f_ = schema_.FindClass("F").value();
  }

  Schema schema_ = MustParseSchema(R"(
schema Idx {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; S: {D}; }
})");
  State state_;
  ClassId c_, e_, f_;
};

TEST_F(StateIndexTest, ExtentIndexMatchesScan) {
  *state_.AddObject(e_);
  *state_.AddObject(f_);
  *state_.AddObject(c_);
  StateIndex index(state_);
  ClassId d = schema_.FindClass("D").value();
  EXPECT_EQ(index.Extent(d), state_.Extent(d));
  EXPECT_EQ(index.Extent(e_), state_.Extent(e_));
  EXPECT_EQ(index.Extent(c_), state_.Extent(c_));
}

TEST_F(StateIndexTest, RefOwners) {
  Oid e1 = *state_.AddObject(e_);
  Oid c1 = *state_.AddObject(c_);
  Oid c2 = *state_.AddObject(c_);
  ASSERT_TRUE(state_.SetAttribute(c1, "A", Value::Ref(e1)).ok());
  ASSERT_TRUE(state_.SetAttribute(c2, "A", Value::Ref(e1)).ok());
  StateIndex index(state_);
  EXPECT_EQ(index.RefOwners("A", e1), (std::vector<Oid>{c1, c2}));
  EXPECT_TRUE(index.RefOwners("A", c1).empty());
  EXPECT_TRUE(index.RefOwners("Nope", e1).empty());
}

TEST_F(StateIndexTest, SetOwners) {
  Oid e1 = *state_.AddObject(e_);
  Oid e2 = *state_.AddObject(e_);
  Oid c1 = *state_.AddObject(c_);
  ASSERT_TRUE(state_.SetAttribute(c1, "S", Value::Set({e1})).ok());
  StateIndex index(state_);
  EXPECT_EQ(index.SetOwners("S", e1), std::vector<Oid>{c1});
  EXPECT_TRUE(index.SetOwners("S", e2).empty());
}

TEST_F(StateIndexTest, IndexedAnswersMatchNaiveOnHandState) {
  Oid e1 = *state_.AddObject(e_);
  Oid e2 = *state_.AddObject(e_);
  Oid c1 = *state_.AddObject(c_);
  Oid c2 = *state_.AddObject(c_);
  ASSERT_TRUE(state_.SetAttribute(c1, "A", Value::Ref(e1)).ok());
  ASSERT_TRUE(state_.SetAttribute(c1, "S", Value::Set({e1, e2})).ok());
  ASSERT_TRUE(state_.SetAttribute(c2, "S", Value::Set({e2})).ok());
  StateIndex index(state_);

  const char* queries[] = {
      "{ x | x in C }",
      "{ x | exists u (x in C & u in E & u = x.A) }",
      "{ x | exists u (x in C & u in E & u in x.S) }",
      "{ u | exists x (u in E & x in C & u in x.S & u = x.A) }",
      "{ x | exists u (x in C & u in E & u notin x.S) }",
      "{ x | exists u exists w (x in C & u in E & w in C & u in x.S & "
      "u in w.S & x != w) }",
  };
  for (const char* text : queries) {
    ConjunctiveQuery query = MustParseQuery(schema_, text);
    std::vector<Oid> naive = *Evaluate(state_, query);
    std::vector<Oid> indexed = *EvaluateIndexed(index, query);
    EXPECT_EQ(naive, indexed) << text;
  }
}

TEST_F(StateIndexTest, IndexProbesBeatScans) {
  // One C object holds one E among many; the indexed evaluator goes
  // straight from the element to its owner.
  std::vector<Oid> es;
  for (int i = 0; i < 50; ++i) es.push_back(*state_.AddObject(e_));
  Oid c1 = *state_.AddObject(c_);
  ASSERT_TRUE(state_.SetAttribute(c1, "S", Value::Set({es[17]})).ok());
  StateIndex index(state_);
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ u | exists x (u in E & x in C & u in x.S) }");

  EvalStats naive_stats;
  std::vector<Oid> naive = *Evaluate(state_, query, {}, &naive_stats);
  IndexedEvalStats indexed_stats;
  std::vector<Oid> indexed = *EvaluateIndexed(index, query, {}, &indexed_stats);
  EXPECT_EQ(naive, indexed);
  EXPECT_EQ(indexed, std::vector<Oid>{es[17]});
  EXPECT_LT(indexed_stats.candidates_enumerated,
            naive_stats.assignments_tried);
}

TEST_F(StateIndexTest, NullSlotsKillBranchesExactly) {
  // c1.A is null: 'u = x.A' must not produce answers through the index
  // (unknown != false under 3VL, but unknown is not true either).
  *state_.AddObject(e_);
  *state_.AddObject(c_);
  StateIndex index(state_);
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists u (x in C & u in E & u = x.A) }");
  EXPECT_TRUE(EvaluateIndexed(index, query)->empty());
}

TEST_F(StateIndexTest, UnionIndexedEvaluation) {
  Oid e1 = *state_.AddObject(e_);
  Oid f1 = *state_.AddObject(f_);
  StateIndex index(state_);
  StatusOr<UnionQuery> query =
      ParseUnionQuery(schema_, "{ x | x in E } union { x | x in F }");
  OOCQ_ASSERT_OK(query.status());
  EXPECT_EQ(*EvaluateUnionIndexed(index, *query),
            (std::vector<Oid>{e1, f1}));
}

TEST_F(StateIndexTest, AssignmentCapEnforced) {
  for (int i = 0; i < 30; ++i) *state_.AddObject(e_);
  StateIndex index(state_);
  ConjunctiveQuery query = MustParseQuery(
      schema_, "{ x | exists y (x in E & y in E) }");
  EvalOptions options;
  options.max_assignments = 10;
  EXPECT_EQ(EvaluateIndexed(index, query, options).status().code(),
            StatusCode::kResourceExhausted);
}

class IndexedEvaluationProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  Schema schema_ = MustParseSchema(R"(
schema IdxProp {
  class D { }
  class E under D { }
  class F under D { }
  class C { A: D; B: E; S: {D}; T: {E}; }
})");
};

TEST_P(IndexedEvaluationProperty, AgreesWithNaiveEvaluatorEverywhere) {
  GeneratorParams gen;
  gen.seed = GetParam();
  gen.objects_per_class = 6;
  State state = GenerateRandomState(schema_, gen);
  StateIndex index(state);

  std::mt19937_64 rng(GetParam() + 50);
  RandomQueryParams params;
  params.allow_negative = true;
  params.terminal_only = false;
  params.max_vars = 4;
  for (int round = 0; round < 15; ++round) {
    ConjunctiveQuery query = GenerateRandomQuery(schema_, rng, params);
    StatusOr<std::vector<Oid>> naive = Evaluate(state, query);
    StatusOr<std::vector<Oid>> indexed = EvaluateIndexed(index, query);
    OOCQ_ASSERT_OK(naive.status());
    OOCQ_ASSERT_OK(indexed.status());
    EXPECT_EQ(*naive, *indexed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedEvaluationProperty,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace oocq
