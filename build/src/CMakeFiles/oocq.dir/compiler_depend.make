# Empty compiler generated dependencies file for oocq.
# This may be replaced when dependencies are built.
