
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/augmentation.cc" "src/CMakeFiles/oocq.dir/core/augmentation.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/augmentation.cc.o.d"
  "/root/repo/src/core/canonical.cc" "src/CMakeFiles/oocq.dir/core/canonical.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/canonical.cc.o.d"
  "/root/repo/src/core/containment.cc" "src/CMakeFiles/oocq.dir/core/containment.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/containment.cc.o.d"
  "/root/repo/src/core/containment_cache.cc" "src/CMakeFiles/oocq.dir/core/containment_cache.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/containment_cache.cc.o.d"
  "/root/repo/src/core/derivability.cc" "src/CMakeFiles/oocq.dir/core/derivability.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/derivability.cc.o.d"
  "/root/repo/src/core/expansion.cc" "src/CMakeFiles/oocq.dir/core/expansion.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/expansion.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/oocq.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/explain.cc.o.d"
  "/root/repo/src/core/general_minimization.cc" "src/CMakeFiles/oocq.dir/core/general_minimization.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/general_minimization.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/CMakeFiles/oocq.dir/core/mapping.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/mapping.cc.o.d"
  "/root/repo/src/core/minimization.cc" "src/CMakeFiles/oocq.dir/core/minimization.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/minimization.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/CMakeFiles/oocq.dir/core/optimizer.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/optimizer.cc.o.d"
  "/root/repo/src/core/satisfiability.cc" "src/CMakeFiles/oocq.dir/core/satisfiability.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/satisfiability.cc.o.d"
  "/root/repo/src/core/search_space.cc" "src/CMakeFiles/oocq.dir/core/search_space.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/search_space.cc.o.d"
  "/root/repo/src/core/view_matching.cc" "src/CMakeFiles/oocq.dir/core/view_matching.cc.o" "gcc" "src/CMakeFiles/oocq.dir/core/view_matching.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/oocq.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/oocq.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/oocq.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/oocq.dir/parser/parser.cc.o.d"
  "/root/repo/src/parser/state_parser.cc" "src/CMakeFiles/oocq.dir/parser/state_parser.cc.o" "gcc" "src/CMakeFiles/oocq.dir/parser/state_parser.cc.o.d"
  "/root/repo/src/query/atom.cc" "src/CMakeFiles/oocq.dir/query/atom.cc.o" "gcc" "src/CMakeFiles/oocq.dir/query/atom.cc.o.d"
  "/root/repo/src/query/equality_graph.cc" "src/CMakeFiles/oocq.dir/query/equality_graph.cc.o" "gcc" "src/CMakeFiles/oocq.dir/query/equality_graph.cc.o.d"
  "/root/repo/src/query/printer.cc" "src/CMakeFiles/oocq.dir/query/printer.cc.o" "gcc" "src/CMakeFiles/oocq.dir/query/printer.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/oocq.dir/query/query.cc.o" "gcc" "src/CMakeFiles/oocq.dir/query/query.cc.o.d"
  "/root/repo/src/query/well_formed.cc" "src/CMakeFiles/oocq.dir/query/well_formed.cc.o" "gcc" "src/CMakeFiles/oocq.dir/query/well_formed.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/oocq.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/oocq.dir/schema/schema.cc.o.d"
  "/root/repo/src/schema/schema_builder.cc" "src/CMakeFiles/oocq.dir/schema/schema_builder.cc.o" "gcc" "src/CMakeFiles/oocq.dir/schema/schema_builder.cc.o.d"
  "/root/repo/src/schema/schema_printer.cc" "src/CMakeFiles/oocq.dir/schema/schema_printer.cc.o" "gcc" "src/CMakeFiles/oocq.dir/schema/schema_printer.cc.o.d"
  "/root/repo/src/state/evaluation.cc" "src/CMakeFiles/oocq.dir/state/evaluation.cc.o" "gcc" "src/CMakeFiles/oocq.dir/state/evaluation.cc.o.d"
  "/root/repo/src/state/generator.cc" "src/CMakeFiles/oocq.dir/state/generator.cc.o" "gcc" "src/CMakeFiles/oocq.dir/state/generator.cc.o.d"
  "/root/repo/src/state/index.cc" "src/CMakeFiles/oocq.dir/state/index.cc.o" "gcc" "src/CMakeFiles/oocq.dir/state/index.cc.o.d"
  "/root/repo/src/state/indexed_evaluation.cc" "src/CMakeFiles/oocq.dir/state/indexed_evaluation.cc.o" "gcc" "src/CMakeFiles/oocq.dir/state/indexed_evaluation.cc.o.d"
  "/root/repo/src/state/state.cc" "src/CMakeFiles/oocq.dir/state/state.cc.o" "gcc" "src/CMakeFiles/oocq.dir/state/state.cc.o.d"
  "/root/repo/src/state/witness.cc" "src/CMakeFiles/oocq.dir/state/witness.cc.o" "gcc" "src/CMakeFiles/oocq.dir/state/witness.cc.o.d"
  "/root/repo/src/support/status.cc" "src/CMakeFiles/oocq.dir/support/status.cc.o" "gcc" "src/CMakeFiles/oocq.dir/support/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
