file(REMOVE_RECURSE
  "liboocq.a"
)
