file(REMOVE_RECURSE
  "../bench/bench_satisfiability"
  "../bench/bench_satisfiability.pdb"
  "CMakeFiles/bench_satisfiability.dir/bench_satisfiability.cpp.o"
  "CMakeFiles/bench_satisfiability.dir/bench_satisfiability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_satisfiability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
