file(REMOVE_RECURSE
  "../bench/bench_containment_general"
  "../bench/bench_containment_general.pdb"
  "CMakeFiles/bench_containment_general.dir/bench_containment_general.cpp.o"
  "CMakeFiles/bench_containment_general.dir/bench_containment_general.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
