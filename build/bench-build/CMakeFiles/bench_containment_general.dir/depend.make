# Empty dependencies file for bench_containment_general.
# This may be replaced when dependencies are built.
