file(REMOVE_RECURSE
  "../bench/bench_containment_positive"
  "../bench/bench_containment_positive.pdb"
  "CMakeFiles/bench_containment_positive.dir/bench_containment_positive.cpp.o"
  "CMakeFiles/bench_containment_positive.dir/bench_containment_positive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_positive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
