# Empty compiler generated dependencies file for bench_containment_positive.
# This may be replaced when dependencies are built.
