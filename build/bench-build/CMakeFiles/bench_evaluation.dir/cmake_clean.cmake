file(REMOVE_RECURSE
  "../bench/bench_evaluation"
  "../bench/bench_evaluation.pdb"
  "CMakeFiles/bench_evaluation.dir/bench_evaluation.cpp.o"
  "CMakeFiles/bench_evaluation.dir/bench_evaluation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
