file(REMOVE_RECURSE
  "../bench/bench_minimization"
  "../bench/bench_minimization.pdb"
  "CMakeFiles/bench_minimization.dir/bench_minimization.cpp.o"
  "CMakeFiles/bench_minimization.dir/bench_minimization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
