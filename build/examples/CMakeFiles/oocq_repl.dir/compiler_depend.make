# Empty compiler generated dependencies file for oocq_repl.
# This may be replaced when dependencies are built.
