file(REMOVE_RECURSE
  "CMakeFiles/oocq_repl.dir/oocq_repl.cpp.o"
  "CMakeFiles/oocq_repl.dir/oocq_repl.cpp.o.d"
  "oocq_repl"
  "oocq_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocq_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
