file(REMOVE_RECURSE
  "CMakeFiles/oocq_cli.dir/oocq_cli.cpp.o"
  "CMakeFiles/oocq_cli.dir/oocq_cli.cpp.o.d"
  "oocq_cli"
  "oocq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
