# Empty dependencies file for oocq_cli.
# This may be replaced when dependencies are built.
