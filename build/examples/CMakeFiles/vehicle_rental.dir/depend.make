# Empty dependencies file for vehicle_rental.
# This may be replaced when dependencies are built.
