file(REMOVE_RECURSE
  "CMakeFiles/vehicle_rental.dir/vehicle_rental.cpp.o"
  "CMakeFiles/vehicle_rental.dir/vehicle_rental.cpp.o.d"
  "vehicle_rental"
  "vehicle_rental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_rental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
