file(REMOVE_RECURSE
  "CMakeFiles/university_catalog.dir/university_catalog.cpp.o"
  "CMakeFiles/university_catalog.dir/university_catalog.cpp.o.d"
  "university_catalog"
  "university_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
