# Empty dependencies file for university_catalog.
# This may be replaced when dependencies are built.
