# Empty dependencies file for large_schema_test.
# This may be replaced when dependencies are built.
