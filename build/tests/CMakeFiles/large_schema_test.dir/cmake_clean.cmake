file(REMOVE_RECURSE
  "CMakeFiles/large_schema_test.dir/large_schema_test.cc.o"
  "CMakeFiles/large_schema_test.dir/large_schema_test.cc.o.d"
  "large_schema_test"
  "large_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
