file(REMOVE_RECURSE
  "CMakeFiles/indexed_evaluation_test.dir/indexed_evaluation_test.cc.o"
  "CMakeFiles/indexed_evaluation_test.dir/indexed_evaluation_test.cc.o.d"
  "indexed_evaluation_test"
  "indexed_evaluation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
