# Empty compiler generated dependencies file for indexed_evaluation_test.
# This may be replaced when dependencies are built.
