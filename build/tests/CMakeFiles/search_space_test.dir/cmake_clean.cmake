file(REMOVE_RECURSE
  "CMakeFiles/search_space_test.dir/search_space_test.cc.o"
  "CMakeFiles/search_space_test.dir/search_space_test.cc.o.d"
  "search_space_test"
  "search_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
