file(REMOVE_RECURSE
  "CMakeFiles/minimization_test.dir/minimization_test.cc.o"
  "CMakeFiles/minimization_test.dir/minimization_test.cc.o.d"
  "minimization_test"
  "minimization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
