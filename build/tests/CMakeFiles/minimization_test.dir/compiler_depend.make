# Empty compiler generated dependencies file for minimization_test.
# This may be replaced when dependencies are built.
