# Empty compiler generated dependencies file for well_formed_test.
# This may be replaced when dependencies are built.
