# Empty dependencies file for equality_graph_test.
# This may be replaced when dependencies are built.
