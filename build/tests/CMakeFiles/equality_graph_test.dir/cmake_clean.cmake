file(REMOVE_RECURSE
  "CMakeFiles/equality_graph_test.dir/equality_graph_test.cc.o"
  "CMakeFiles/equality_graph_test.dir/equality_graph_test.cc.o.d"
  "equality_graph_test"
  "equality_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equality_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
