# Empty compiler generated dependencies file for exhaustive_semantics_test.
# This may be replaced when dependencies are built.
