file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_semantics_test.dir/exhaustive_semantics_test.cc.o"
  "CMakeFiles/exhaustive_semantics_test.dir/exhaustive_semantics_test.cc.o.d"
  "exhaustive_semantics_test"
  "exhaustive_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
