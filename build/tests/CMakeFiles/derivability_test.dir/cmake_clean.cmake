file(REMOVE_RECURSE
  "CMakeFiles/derivability_test.dir/derivability_test.cc.o"
  "CMakeFiles/derivability_test.dir/derivability_test.cc.o.d"
  "derivability_test"
  "derivability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
