# Empty dependencies file for derivability_test.
# This may be replaced when dependencies are built.
