# Empty compiler generated dependencies file for property_containment_test.
# This may be replaced when dependencies are built.
