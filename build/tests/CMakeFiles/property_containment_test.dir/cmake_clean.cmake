file(REMOVE_RECURSE
  "CMakeFiles/property_containment_test.dir/property_containment_test.cc.o"
  "CMakeFiles/property_containment_test.dir/property_containment_test.cc.o.d"
  "property_containment_test"
  "property_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
