file(REMOVE_RECURSE
  "CMakeFiles/general_minimization_test.dir/general_minimization_test.cc.o"
  "CMakeFiles/general_minimization_test.dir/general_minimization_test.cc.o.d"
  "general_minimization_test"
  "general_minimization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/general_minimization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
