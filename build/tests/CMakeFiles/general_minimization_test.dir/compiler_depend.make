# Empty compiler generated dependencies file for general_minimization_test.
# This may be replaced when dependencies are built.
