# Empty compiler generated dependencies file for augmentation_test.
# This may be replaced when dependencies are built.
