file(REMOVE_RECURSE
  "CMakeFiles/path_sugar_test.dir/path_sugar_test.cc.o"
  "CMakeFiles/path_sugar_test.dir/path_sugar_test.cc.o.d"
  "path_sugar_test"
  "path_sugar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_sugar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
