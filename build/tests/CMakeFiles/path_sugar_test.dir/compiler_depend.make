# Empty compiler generated dependencies file for path_sugar_test.
# This may be replaced when dependencies are built.
