# Empty dependencies file for integration_examples_test.
# This may be replaced when dependencies are built.
