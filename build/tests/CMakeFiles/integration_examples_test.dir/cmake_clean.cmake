file(REMOVE_RECURSE
  "CMakeFiles/integration_examples_test.dir/integration_examples_test.cc.o"
  "CMakeFiles/integration_examples_test.dir/integration_examples_test.cc.o.d"
  "integration_examples_test"
  "integration_examples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
