file(REMOVE_RECURSE
  "CMakeFiles/view_matching_test.dir/view_matching_test.cc.o"
  "CMakeFiles/view_matching_test.dir/view_matching_test.cc.o.d"
  "view_matching_test"
  "view_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
