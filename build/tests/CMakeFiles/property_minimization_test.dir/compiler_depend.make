# Empty compiler generated dependencies file for property_minimization_test.
# This may be replaced when dependencies are built.
