file(REMOVE_RECURSE
  "CMakeFiles/property_minimization_test.dir/property_minimization_test.cc.o"
  "CMakeFiles/property_minimization_test.dir/property_minimization_test.cc.o.d"
  "property_minimization_test"
  "property_minimization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_minimization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
