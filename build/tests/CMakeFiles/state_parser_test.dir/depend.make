# Empty dependencies file for state_parser_test.
# This may be replaced when dependencies are built.
