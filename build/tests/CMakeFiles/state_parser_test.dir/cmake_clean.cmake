file(REMOVE_RECURSE
  "CMakeFiles/state_parser_test.dir/state_parser_test.cc.o"
  "CMakeFiles/state_parser_test.dir/state_parser_test.cc.o.d"
  "state_parser_test"
  "state_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
