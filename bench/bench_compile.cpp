// E18 — what query compilation buys (docs/compilation.md): the same
// workload runs with the src/compile/ fast paths on and off, and the
// p50 speedups are the headline numbers.
//
//  * eval: a three-variable join (the E7 ablation query) on a random
//    vehicle-rental state, tree walker vs the register VM executing a
//    session-cached program. Answers must be identical; the compiled
//    p50 must beat the interpreted p50 by at least --min-speedup
//    (default 5x, the ISSUE acceptance bar).
//  * subset_scan: a Thm 3.1 membership-subset scan with |T| = 16
//    (2^15 masks after the forced-atom split), interpreted per-mask
//    mapping searches vs the word-parallel compiled coverage test.
//    Verdicts must be identical.
//
// Standalone binary (no google-benchmark): writes BENCH_compile.json
// with both legs' p50/p99 and the speedups, stamped via BeginBenchJson.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compile/program_cache.h"
#include "core/containment.h"
#include "parser/parser.h"
#include "state/evaluation.h"
#include "state/generator.h"

namespace oocq::bench {
namespace {

// Keeps the measured calls observable without google-benchmark's
// DoNotOptimize.
volatile uint64_t benchmark_dummy_sink = 0;

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

struct Sample {
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

/// Times `fn` (already warmed) `iters` times; returns sorted-percentile
/// latencies in microseconds.
template <typename Fn>
Sample Measure(int iters, Fn&& fn) {
  std::vector<uint64_t> us;
  us.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
            .count()));
  }
  std::sort(us.begin(), us.end());
  Sample sample;
  sample.p50_us = Percentile(us, 0.50);
  sample.p99_us = Percentile(us, 0.99);
  return sample;
}

// ---- Leg 1: evaluation, tree walker vs register VM -------------------

constexpr const char* kEvalQuery =
    "{ x | exists c exists y (x in Vehicle & c in Vehicle & "
    "y in Discount & x in y.VehRented & c in y.VehRented) }";

struct EvalLeg {
  Sample interpreted;
  Sample compiled;
};

EvalLeg RunEvalLeg(int iters) {
  Schema schema = MakeVehicleRentalSchema();
  GeneratorParams params;
  params.objects_per_class = 160;
  params.null_probability = 0.2;
  params.max_set_size = 6;
  params.seed = 1234;
  State database = GenerateRandomState(schema, params);
  ConjunctiveQuery query = Must(ParseQuery(schema, kEvalQuery));

  EvalOptions interpreted;
  interpreted.enable_compilation = false;
  EvalOptions compiled;
  compiled.enable_compilation = true;
  // Steady-state shape: the server compiles once per (session, query)
  // into the session ProgramCache and executes many times.
  compile::ProgramCache cache;
  compiled.program = cache.GetOrCompile(schema, query);
  if (compiled.program == nullptr) {
    std::fprintf(stderr, "FAIL: eval query did not compile\n");
    std::exit(1);
  }

  std::vector<Oid> walker_answers = Must(Evaluate(database, query, interpreted));
  std::vector<Oid> vm_answers = Must(Evaluate(database, query, compiled));
  if (walker_answers != vm_answers) {
    std::fprintf(stderr, "FAIL: compiled answers differ (%zu vs %zu)\n",
                 vm_answers.size(), walker_answers.size());
    std::exit(1);
  }

  EvalLeg leg;
  leg.interpreted = Measure(iters, [&] {
    benchmark_dummy_sink += Must(Evaluate(database, query, interpreted)).size();
  });
  leg.compiled = Measure(iters, [&] {
    benchmark_dummy_sink += Must(Evaluate(database, query, compiled)).size();
  });
  return leg;
}

// ---- Leg 2: the Thm 3.1 subset scan, per-mask vs word-parallel -------

/// Schema with k set attributes on one class, and a Q1 whose existential
/// witness u lies in all k sets while Q2 keeps a non-membership atom —
/// the shape that defeats every Cor 3.2–3.4 fast path and forces the
/// full 2^|T| membership-subset enumeration (tests/compile_test.cc).
std::string HeavySchemaText(int k) {
  std::string text = "schema Heavy {\n  class D { }\n  class C { ";
  for (int i = 0; i < k; ++i) text += "S" + std::to_string(i) + ": {D}; ";
  text += "}\n}";
  return text;
}

std::string HeavyQ1(int k) {
  std::string q1 = "{ x | exists y exists u (x in D & y in C & u in D";
  for (int i = 0; i < k; ++i) q1 += " & u in y.S" + std::to_string(i);
  q1 += " & x notin y.S0) }";
  return q1;
}

struct ScanLeg {
  Sample interpreted;
  Sample compiled;
};

ScanLeg RunSubsetScanLeg(int k, int iters) {
  Schema schema = Must(ParseSchema(HeavySchemaText(k)));
  ConjunctiveQuery q1 = Must(ParseQuery(schema, HeavyQ1(k)));
  ConjunctiveQuery q2 = Must(ParseQuery(
      schema, "{ x | exists y (x in D & y in C & x notin y.S0) }"));

  ContainmentOptions interpreted;
  interpreted.enable_compilation = false;
  ContainmentOptions compiled;
  compiled.enable_compilation = true;

  bool slow = Must(Contained(schema, q1, q2, interpreted));
  bool fast = Must(Contained(schema, q1, q2, compiled));
  if (slow != fast) {
    std::fprintf(stderr, "FAIL: subset-scan verdicts differ\n");
    std::exit(1);
  }

  ScanLeg leg;
  leg.interpreted = Measure(iters, [&] {
    benchmark_dummy_sink +=
        Must(Contained(schema, q1, q2, interpreted)) ? 1u : 0u;
  });
  leg.compiled = Measure(iters, [&] {
    benchmark_dummy_sink +=
        Must(Contained(schema, q1, q2, compiled)) ? 1u : 0u;
  });
  return leg;
}

double Speedup(const Sample& interpreted, const Sample& compiled) {
  if (compiled.p50_us == 0) {
    // Sub-microsecond compiled leg: report against 1us so the ratio
    // stays finite (and conservative).
    return static_cast<double>(interpreted.p50_us);
  }
  return static_cast<double>(interpreted.p50_us) /
         static_cast<double>(compiled.p50_us);
}

}  // namespace
}  // namespace oocq::bench

int main(int argc, char** argv) {
  using namespace oocq::bench;
  double min_speedup = 5.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    }
  }

  EvalLeg eval = RunEvalLeg(/*iters=*/300);
  ScanLeg scan = RunSubsetScanLeg(/*k=*/16, /*iters=*/30);

  double eval_speedup = Speedup(eval.interpreted, eval.compiled);
  double scan_speedup = Speedup(scan.interpreted, scan.compiled);

  std::FILE* out = std::fopen("BENCH_compile.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_compile.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"eval\": {\n"
               "    \"interpreted\": {\"p50_us\": %llu, \"p99_us\": %llu},\n"
               "    \"compiled\": {\"p50_us\": %llu, \"p99_us\": %llu},\n"
               "    \"speedup_p50\": %.2f\n  },\n",
               static_cast<unsigned long long>(eval.interpreted.p50_us),
               static_cast<unsigned long long>(eval.interpreted.p99_us),
               static_cast<unsigned long long>(eval.compiled.p50_us),
               static_cast<unsigned long long>(eval.compiled.p99_us),
               eval_speedup);
  std::fprintf(out,
               "  \"subset_scan\": {\n"
               "    \"interpreted\": {\"p50_us\": %llu, \"p99_us\": %llu},\n"
               "    \"compiled\": {\"p50_us\": %llu, \"p99_us\": %llu},\n"
               "    \"speedup_p50\": %.2f\n  }\n}\n",
               static_cast<unsigned long long>(scan.interpreted.p50_us),
               static_cast<unsigned long long>(scan.interpreted.p99_us),
               static_cast<unsigned long long>(scan.compiled.p50_us),
               static_cast<unsigned long long>(scan.compiled.p99_us),
               scan_speedup);
  std::fclose(out);

  std::printf("eval:        interpreted p50 %llu us, compiled p50 %llu us "
              "(%.1fx)\n",
              static_cast<unsigned long long>(eval.interpreted.p50_us),
              static_cast<unsigned long long>(eval.compiled.p50_us),
              eval_speedup);
  std::printf("subset_scan: interpreted p50 %llu us, compiled p50 %llu us "
              "(%.1fx)\n",
              static_cast<unsigned long long>(scan.interpreted.p50_us),
              static_cast<unsigned long long>(scan.compiled.p50_us),
              scan_speedup);
  std::printf("wrote BENCH_compile.json\n");

  if (eval_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: eval speedup %.2fx below the %.1fx acceptance bar\n",
                 eval_speedup, min_speedup);
    return 1;
  }
  return 0;
}
