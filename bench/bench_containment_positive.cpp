// E8 — positive containment (Cor 3.4): a single non-contradictory
// mapping search, the OODB analogue of the Chandra-Merlin homomorphism
// test (NP-hard in general).
//
// Series reproduced:
//  * Containment/ChainInChain/k: chain-k ⊆ chain-(k/2) — mapping exists.
//  * Containment/ChainNotInLonger/k: chain-k ⊆ chain-(k+1) — the search
//    must exhaust (the hard refutation direction).
//  * Containment/StarInStar/k: k membership witnesses fold onto one.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/containment.h"

namespace oocq {
namespace {

void ReportStats(benchmark::State& state, const ContainmentStats& stats,
                 bool contained) {
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["mapping_steps"] = static_cast<double>(stats.mapping_steps);
  state.counters["mapping_searches"] =
      static_cast<double>(stats.mapping_searches);
}

void BM_ContainmentChainInChain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery longer = bench::MakeChainQuery(schema, k);
  ConjunctiveQuery shorter = bench::MakeChainQuery(schema, k / 2);
  ContainmentStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained = bench::Must(Contained(schema, longer, shorter, {}, &stats));
    benchmark::DoNotOptimize(contained);
  }
  ReportStats(state, stats, contained);
}
BENCHMARK(BM_ContainmentChainInChain)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_ContainmentChainNotInLonger(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery shorter = bench::MakeChainQuery(schema, k);
  ConjunctiveQuery longer = bench::MakeChainQuery(schema, k + 1);
  ContainmentOptions options;
  options.max_mapping_steps = 1'000'000'000;
  ContainmentStats stats;
  bool contained = true;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained =
        bench::Must(Contained(schema, shorter, longer, options, &stats));
    benchmark::DoNotOptimize(contained);
  }
  ReportStats(state, stats, contained);
}
BENCHMARK(BM_ContainmentChainNotInLonger)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_ContainmentStarInStar(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery big = bench::MakeStarQuery(schema, k);
  ConjunctiveQuery small = bench::MakeStarQuery(schema, 1);
  ContainmentStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained = bench::Must(Contained(schema, small, big, {}, &stats));
    benchmark::DoNotOptimize(contained);
  }
  ReportStats(state, stats, contained);
}
BENCHMARK(BM_ContainmentStarInStar)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
