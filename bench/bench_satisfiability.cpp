// E8 — satisfiability (Thm 2.2) and Algorithm EqualityGraph scaling.
//
// Series reproduced:
//  * Satisfiability/Chain/k: the test on length-k attribute chains — the
//    paper claims an "efficient algorithm"; the series shows polynomial
//    growth.
//  * EqualityGraph/Congruence/k: closure cost when every merge cascades
//    through the congruence rule (worst case for step (iii)).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/satisfiability.h"
#include "query/equality_graph.h"

namespace oocq {
namespace {

void BM_SatisfiabilityChain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery query = bench::MakeChainQuery(schema, k);
  for (auto _ : state) {
    SatisfiabilityResult result = CheckSatisfiable(schema, query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["vars"] = k + 1;
  state.counters["atoms"] = static_cast<double>(query.atoms().size());
}
BENCHMARK(BM_SatisfiabilityChain)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// A query engineered so the congruence rule fires in waves: variables
// x0..xk all equated pairwise-lazily (x0=x1, x1=x2, ...) with x_i.Next
// terms present, each merge triggering the next.
ConjunctiveQuery MakeCongruenceQuery(const Schema& schema, int k) {
  ClassId n = *schema.FindClass("N");
  ConjunctiveQuery query;
  for (int i = 0; i <= k; ++i) query.AddVariable("x" + std::to_string(i));
  for (int i = 0; i <= k; ++i) {
    query.AddAtom(Atom::Range(static_cast<VarId>(i), {n}));
  }
  for (int i = 0; i < k; ++i) {
    query.AddAtom(Atom::Equality(Term::Var(static_cast<VarId>(i)),
                                 Term::Var(static_cast<VarId>(i + 1))));
    // Make x_i.Next a node so every variable merge cascades.
    query.AddAtom(Atom::Equality(Term::Attr(static_cast<VarId>(i), "Next"),
                                 Term::Var(static_cast<VarId>(i + 1))));
  }
  return query;
}

void BM_EqualityGraphCongruence(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery query = MakeCongruenceQuery(schema, k);
  for (auto _ : state) {
    EqualityGraph graph = EqualityGraph::Build(query);
    benchmark::DoNotOptimize(graph);
  }
  state.counters["vars"] = k + 1;
}
BENCHMARK(BM_EqualityGraphCongruence)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SatisfiabilityUnsatDetection(benchmark::State& state) {
  // Worst-case-ish: the unsatisfiability (cross-class merge) is buried at
  // the end of a long equality chain.
  const int k = static_cast<int>(state.range(0));
  SchemaBuilder builder;
  builder.AddClass("Root");
  builder.AddClass("L", {"Root"});
  builder.AddClass("R", {"Root"});
  Schema schema = bench::Must(builder.Build());
  ClassId l = *schema.FindClass("L");
  ClassId r = *schema.FindClass("R");
  ConjunctiveQuery query;
  for (int i = 0; i <= k; ++i) {
    VarId v = query.AddVariable("x" + std::to_string(i));
    query.AddAtom(Atom::Range(v, {i == k ? r : l}));
  }
  for (int i = 0; i < k; ++i) {
    query.AddAtom(Atom::Equality(Term::Var(static_cast<VarId>(i)),
                                 Term::Var(static_cast<VarId>(i + 1))));
  }
  for (auto _ : state) {
    SatisfiabilityResult result = CheckSatisfiable(schema, query);
    benchmark::DoNotOptimize(result);
  }
  state.counters["vars"] = k + 1;
}
BENCHMARK(BM_SatisfiabilityUnsatDetection)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
