// E7 — the paper's motivating claim (§1): the minimized query logically
// accesses a minimal set of objects. We evaluate the original
// Vehicle/Discount query (Ex 1.1) and its minimized Auto form on random
// states of growing size and report both wall time and the evaluator's
// work counters (candidate pool = static search space, assignments tried
// = dynamic search work).
//
// Series reproduced:
//  * Evaluation/Original/N vs Evaluation/Minimized/N: time and
//    search-space counters vs objects-per-class N. The shape to
//    reproduce: the minimized query's candidate pool is smaller by the
//    ratio of the pruned terminal classes (here: Vehicle's 3 terminals +
//    both client classes vs Auto + Discount), with matching answers.
//  * Evaluation/PartitionOriginal vs PartitionMinimized: the same for
//    Example 1.2's query.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compile/program_cache.h"
#include "core/minimization.h"
#include "parser/parser.h"
#include "state/evaluation.h"
#include "state/generator.h"
#include "state/indexed_evaluation.h"

namespace oocq {
namespace {

GeneratorParams MakeParams(int n) {
  GeneratorParams params;
  params.objects_per_class = static_cast<uint32_t>(n);
  params.null_probability = 0.2;
  params.max_set_size = 6;
  params.seed = 1234;
  return params;
}

void RunEvaluation(benchmark::State& state, const State& database,
                   const UnionQuery& query) {
  EvalStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    stats = EvalStats();
    std::vector<Oid> result =
        bench::Must(EvaluateUnion(database, query, {}, &stats));
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["candidate_pool"] = static_cast<double>(stats.candidate_pool);
  state.counters["assignments"] =
      static_cast<double>(stats.assignments_tried);
}

void BM_EvaluationVehicleOriginal(benchmark::State& state) {
  Schema schema = bench::MakeVehicleRentalSchema();
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  UnionQuery query;
  query.disjuncts.push_back(bench::Must(ParseQuery(
      schema,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }")));
  RunEvaluation(state, database, query);
}
BENCHMARK(BM_EvaluationVehicleOriginal)
    ->Arg(10)->Arg(40)->Arg(160)->Arg(640);

void BM_EvaluationVehicleMinimized(benchmark::State& state) {
  Schema schema = bench::MakeVehicleRentalSchema();
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  ConjunctiveQuery original = bench::Must(ParseQuery(
      schema,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }"));
  MinimizationReport report =
      bench::Must(MinimizePositiveQuery(schema, original));
  RunEvaluation(state, database, report.minimized);
}
BENCHMARK(BM_EvaluationVehicleMinimized)
    ->Arg(10)->Arg(40)->Arg(160)->Arg(640);

void BM_EvaluationPartitionOriginal(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(R"(
schema Partition {
  class G { }
  class H under G { }
  class I under G { }
  class N1 { A: {G}; }
  class T1 under N1 { }
  class T2 under N1 { B: G; }
  class T3 under N1 { B: G; A: {I}; }
})"));
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  UnionQuery query;
  query.disjuncts.push_back(bench::Must(ParseQuery(
      schema,
      "{ x | exists y exists s (x in N1 & y in G & s in H & y = x.B & "
      "y in x.A & s in x.A) }")));
  RunEvaluation(state, database, query);
}
BENCHMARK(BM_EvaluationPartitionOriginal)->Arg(10)->Arg(40)->Arg(160);

void BM_EvaluationPartitionMinimized(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(R"(
schema Partition {
  class G { }
  class H under G { }
  class I under G { }
  class N1 { A: {G}; }
  class T1 under N1 { }
  class T2 under N1 { B: G; }
  class T3 under N1 { B: G; A: {I}; }
})"));
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  ConjunctiveQuery original = bench::Must(ParseQuery(
      schema,
      "{ x | exists y exists s (x in N1 & y in G & s in H & y = x.B & "
      "y in x.A & s in x.A) }"));
  MinimizationReport report =
      bench::Must(MinimizePositiveQuery(schema, original));
  RunEvaluation(state, database, report.minimized);
}
BENCHMARK(BM_EvaluationPartitionMinimized)->Arg(10)->Arg(40)->Arg(160);

// Ablation: the greedy join order (bind small extents first) vs
// declaration order, on a query whose selective variable is declared
// last. Answers identical; assignments differ sharply.
void BM_EvaluationJoinOrder(benchmark::State& state) {
  const bool reorder = state.range(1) != 0;
  Schema schema = bench::MakeVehicleRentalSchema();
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  ConjunctiveQuery query = bench::Must(ParseQuery(
      schema,
      "{ x | exists c exists y (x in Vehicle & c in Vehicle & "
      "y in Discount & x in y.VehRented & c in y.VehRented) }"));
  EvalOptions options;
  options.reorder_variables = reorder;
  EvalStats stats;
  size_t answers = 0;
  for (auto _ : state) {
    stats = EvalStats();
    std::vector<Oid> result =
        bench::Must(Evaluate(database, query, options, &stats));
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["assignments"] =
      static_cast<double>(stats.assignments_tried);
}
BENCHMARK(BM_EvaluationJoinOrder)
    ->ArgNames({"n", "reorder"})
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({160, 0})
    ->Args({160, 1});

// Compilation ablation (docs/compilation.md): the tree walker vs the
// register bytecode VM executing a session-cached program, on the same
// three-variable join as the join-order ablation. Answers identical;
// the VM pre-resolves every attribute to a slot index and hoists the
// loads, so the per-binding cost collapses.
void BM_EvaluationCompiledVsWalker(benchmark::State& state) {
  const bool compiled = state.range(1) != 0;
  Schema schema = bench::MakeVehicleRentalSchema();
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  ConjunctiveQuery query = bench::Must(ParseQuery(
      schema,
      "{ x | exists c exists y (x in Vehicle & c in Vehicle & "
      "y in Discount & x in y.VehRented & c in y.VehRented) }"));
  compile::ProgramCache cache;
  EvalOptions options;
  options.enable_compilation = compiled;
  if (compiled) {
    options.program = cache.GetOrCompile(schema, query);
    if (options.program == nullptr) state.SkipWithError("did not compile");
  }
  size_t answers = 0;
  for (auto _ : state) {
    std::vector<Oid> result = bench::Must(Evaluate(database, query, options));
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_EvaluationCompiledVsWalker)
    ->ArgNames({"n", "compiled"})
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({160, 0})
    ->Args({160, 1})
    ->Args({640, 0})
    ->Args({640, 1});

// Access-path ablation: the naive scan evaluator vs the index-nested-loop
// evaluator on a selective join (which clients rented one given vehicle's
// sibling autos). The index turns the membership atom into a probe.
void BM_EvaluationIndexedVsNaive(benchmark::State& state) {
  const bool indexed = state.range(1) != 0;
  Schema schema = bench::MakeVehicleRentalSchema();
  State database = GenerateRandomState(schema, MakeParams(state.range(0)));
  ConjunctiveQuery query = bench::Must(ParseQuery(
      schema,
      "{ y | exists x exists z (y in Client & x in Auto & z in Auto & "
      "x in y.VehRented & z in y.VehRented & x != z) }"));
  StateIndex index(database);
  size_t answers = 0;
  for (auto _ : state) {
    std::vector<Oid> result =
        indexed ? bench::Must(EvaluateIndexed(index, query))
                : bench::Must(Evaluate(database, query));
    answers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_EvaluationIndexedVsNaive)
    ->ArgNames({"n", "indexed"})
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({160, 0})
    ->Args({160, 1})
    ->Args({640, 1});  // The naive scan takes ~15 s/iteration at 640.

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
