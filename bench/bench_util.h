#ifndef OOCQ_BENCH_BENCH_UTIL_H_
#define OOCQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "parser/parser.h"
#include "query/query.h"
#include "schema/schema.h"
#include "schema/schema_builder.h"
#include "support/status.h"

// Baked in by bench/CMakeLists.txt at configure time; "unknown" when the
// header is compiled outside that directory (or git is unavailable).
#ifndef OOCQ_BENCH_GIT_SHA
#define OOCQ_BENCH_GIT_SHA "unknown"
#endif
#ifndef OOCQ_BENCH_BUILD_TYPE
#define OOCQ_BENCH_BUILD_TYPE "unknown"
#endif

namespace oocq::bench {

/// Opens the top-level object of a BENCH_*.json result file and stamps
/// it with provenance — the commit the binary was built from and the
/// build configuration — so archived result files stay comparable.
/// Callers continue with their own fields and close the object.
inline void BeginBenchJson(std::FILE* out) {
  std::fprintf(out, "{\n  \"git_sha\": \"%s\",\n  \"build_type\": \"%s\",\n",
               OOCQ_BENCH_GIT_SHA, OOCQ_BENCH_BUILD_TYPE);
}

/// Aborts the benchmark on error (benchmarks have no failure channel).
template <typename T>
T Must(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n",
                 value.status().ToString().c_str());
    std::abort();
  }
  return *std::move(value);
}

inline void MustOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

/// Schema with one terminal class N carrying a self-typed attribute and a
/// self-typed set attribute — the substrate for chain/star queries.
inline Schema MakeChainSchema() {
  SchemaBuilder builder;
  builder.AddClass("N");
  builder.AddAttribute("N", "Next", TypeName::Class("N"));
  builder.AddAttribute("N", "Items", TypeName::SetOf("N"));
  return Must(builder.Build());
}

/// { x0 | ∃x1..xk ( xi in N  &  x_{i+1} = x_i.Next ) } — a length-k
/// attribute chain (the OODB analogue of a relational path query).
inline ConjunctiveQuery MakeChainQuery(const Schema& schema, int k) {
  ClassId n = Must(schema.FindClass("N"));
  ConjunctiveQuery query;
  for (int i = 0; i <= k; ++i) {
    query.AddVariable("x" + std::to_string(i));
  }
  for (int i = 0; i <= k; ++i) {
    query.AddAtom(Atom::Range(static_cast<VarId>(i), {n}));
  }
  for (int i = 0; i < k; ++i) {
    query.AddAtom(Atom::Equality(Term::Var(static_cast<VarId>(i + 1)),
                                 Term::Attr(static_cast<VarId>(i), "Next")));
  }
  return query;
}

/// { x | ∃u1..uk ( x, ui in N  &  ui in x.Items ) } — a star of k
/// interchangeable membership witnesses; minimization folds it to one.
inline ConjunctiveQuery MakeStarQuery(const Schema& schema, int k) {
  ClassId n = Must(schema.FindClass("N"));
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  query.AddAtom(Atom::Range(x, {n}));
  for (int i = 0; i < k; ++i) {
    VarId u = query.AddVariable("u" + std::to_string(i));
    query.AddAtom(Atom::Range(u, {n}));
    query.AddAtom(Atom::Membership(u, x, "Items"));
  }
  return query;
}

/// Schema with a root class R refined into `fanout` terminal subclasses
/// (R1..Rf), used to measure the Prop 2.1 expansion blow-up.
inline Schema MakeFanoutSchema(int fanout) {
  SchemaBuilder builder;
  builder.AddClass("R");
  for (int i = 0; i < fanout; ++i) {
    builder.AddClass("R" + std::to_string(i), {"R"});
  }
  return Must(builder.Build());
}

/// { x0 | ∃x1..x_{vars-1} ( xi in R ) } over the fanout schema.
inline ConjunctiveQuery MakeFanoutQuery(const Schema& schema, int vars) {
  ClassId r = Must(schema.FindClass("R"));
  ConjunctiveQuery query;
  for (int i = 0; i < vars; ++i) {
    VarId v = query.AddVariable("x" + std::to_string(i));
    query.AddAtom(Atom::Range(v, {r}));
  }
  return query;
}

/// The Example 1.1 vehicle-rental schema (kept in sync with the tests).
inline Schema MakeVehicleRentalSchema() {
  return Must(ParseSchema(R"(
schema VehicleRental {
  class Vehicle { VehId: String; Weight: Real; }
  class Auto under Vehicle { Doors: Int; }
  class Trailer under Vehicle { Axles: Int; }
  class Truck under Vehicle { Payload: Real; }
  class Client { Name: String; VehRented: {Vehicle}; Deposit: Real; }
  class Regular under Client { }
  class Discount under Client { Rate: Real; VehRented: {Auto}; }
})"));
}

}  // namespace oocq::bench

#endif  // OOCQ_BENCH_BENCH_UTIL_H_
