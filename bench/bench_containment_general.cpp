// E3/E4/E8 — general containment (Thm 3.1): the cost of the two
// enumeration axes the paper's characterization introduces on top of the
// positive mapping test.
//
// Series reproduced:
//  * Containment/Augmentations/k: Q2 carries an inequality, Q1 has k
//    same-class variables — consistent augmentations grow like Bell(k)
//    (Cor 3.3 axis).
//  * Containment/MembershipSubsets/k: Q2 carries a non-membership, Q1
//    mentions k distinct set terms — 2^|T| subsets W (Cor 3.2 axis).
//  * Containment/Example13: the paper's implied-inequality equivalence
//    as a fixed-point reference workload.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/containment.h"
#include "parser/parser.h"
#include "schema/schema_builder.h"

namespace oocq {
namespace {

void BM_ContainmentAugmentations(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ClassId n = *schema.FindClass("N");
  // Q1: k same-class variables with one distinctness pin (x0 != x1), so
  // containment holds and EVERY consistent augmentation is enumerated —
  // the counter exposes the Bell-number growth.
  ConjunctiveQuery q1;
  for (int i = 0; i < k; ++i) {
    VarId v = q1.AddVariable("x" + std::to_string(i));
    q1.AddAtom(Atom::Range(v, {n}));
  }
  q1.AddAtom(Atom::Inequality(Term::Var(0), Term::Var(1)));
  // Q2: x != y — the simplest inequality right-hand side.
  ConjunctiveQuery q2;
  VarId x = q2.AddVariable("x");
  VarId y = q2.AddVariable("y");
  q2.AddAtom(Atom::Range(x, {n}));
  q2.AddAtom(Atom::Range(y, {n}));
  q2.AddAtom(Atom::Inequality(Term::Var(x), Term::Var(y)));

  ContainmentOptions options;
  options.max_augmentations = 10'000'000;
  ContainmentStats stats;
  bool contained = true;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained = bench::Must(Contained(schema, q1, q2, options, &stats));
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] = contained ? 1 : 0;  // True: x0 != x1 pins it.
  state.counters["augmentations"] = static_cast<double>(stats.augmentations);
  state.counters["mapping_searches"] =
      static_cast<double>(stats.mapping_searches);
}
BENCHMARK(BM_ContainmentAugmentations)->DenseRange(2, 9);

void BM_ContainmentMembershipSubsets(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // Schema with k distinct set attributes S0..S{k-1}.
  SchemaBuilder builder;
  builder.AddClass("D");
  builder.AddClass("C");
  for (int i = 0; i < k; ++i) {
    builder.AddAttribute("C", "S" + std::to_string(i), TypeName::SetOf("D"));
  }
  Schema schema = bench::Must(builder.Build());
  ClassId c = *schema.FindClass("C");
  ClassId d = *schema.FindClass("D");

  // Q1: one element witness u inside every set y.S_i, plus the pin
  // x ∉ y.S0. The candidate pool T is then exactly {x in y.S_j : j >= 1}
  // (|T| = k-1): x ∈ y.S0 conflicts with the pin and the u memberships
  // are already derivable. Containment holds, so all 2^(k-1) subsets W
  // are enumerated — the Cor 3.2 axis in isolation.
  ConjunctiveQuery q1;
  VarId x1 = q1.AddVariable("x");
  VarId y1 = q1.AddVariable("y");
  VarId u1 = q1.AddVariable("u");
  q1.AddAtom(Atom::Range(x1, {d}));
  q1.AddAtom(Atom::Range(y1, {c}));
  q1.AddAtom(Atom::Range(u1, {d}));
  for (int i = 0; i < k; ++i) {
    q1.AddAtom(Atom::Membership(u1, y1, "S" + std::to_string(i)));
  }
  q1.AddAtom(Atom::NonMembership(x1, y1, "S0"));
  // Q2: x notin y.S0.
  ConjunctiveQuery q2;
  VarId x2 = q2.AddVariable("x");
  VarId y2 = q2.AddVariable("y");
  q2.AddAtom(Atom::Range(x2, {d}));
  q2.AddAtom(Atom::Range(y2, {c}));
  q2.AddAtom(Atom::NonMembership(x2, y2, "S0"));

  ContainmentOptions options;
  options.max_membership_candidates = 40;
  ContainmentStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained = bench::Must(Contained(schema, q1, q2, options, &stats));
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] = contained ? 1 : 0;  // True: the pin holds.
  state.counters["membership_subsets"] =
      static_cast<double>(stats.membership_subsets);
}
BENCHMARK(BM_ContainmentMembershipSubsets)->DenseRange(1, 10);

void BM_ContainmentExample13(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(R"(
schema ImpliedInequality {
  class D { }
  class T1 under D { }
  class T2 under D { }
  class C { A: D; }
})"));
  ConjunctiveQuery q1 = bench::Must(ParseQuery(
      schema,
      "{ x | exists y exists s exists t (x in C & y in C & s in T1 & "
      "t in T2 & s = x.A & t = y.A & x != y) }"));
  ConjunctiveQuery q2 = bench::Must(ParseQuery(
      schema,
      "{ x | exists y exists s exists t (x in C & y in C & s in T1 & "
      "t in T2 & s = x.A & t = y.A) }"));
  bool equivalent = false;
  for (auto _ : state) {
    equivalent = bench::Must(EquivalentQueries(schema, q1, q2));
    benchmark::DoNotOptimize(equivalent);
  }
  state.counters["equivalent"] = equivalent ? 1 : 0;  // Paper: 1.
}
BENCHMARK(BM_ContainmentExample13);

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
