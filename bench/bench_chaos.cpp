// E15 — the cost of robustness (docs/robustness.md): (1) the disarmed
// failpoint fast path must be invisible — its per-check cost, scaled by
// the checks a request actually crosses, must stay under 1% of request
// latency; (2) after an injected WAL fsync fault, a mutation must roll
// back and the immediate retry must land — the p50 of that
// fault-to-recovered window is the self-healing latency a retrying
// client observes.
//
// Standalone binary (no google-benchmark): writes BENCH_chaos.json and
// exits nonzero when the <1% overhead bound or the recovery property
// fails.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "persist/catalog.h"
#include "server/service.h"
#include "support/failpoint.h"
#include "support/file.h"
#include "support/status.h"

namespace oocq::bench {
namespace {

using server::OocqService;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ServiceOptions;

constexpr const char* kSchema = R"(
schema Bench {
  class Vehicle { }
  class Auto under Vehicle { }
  class Trailer under Vehicle { }
  class Client { VehRented: {Vehicle}; }
  class Discount under Client { VehRented: {Auto}; }
}
)";

// The E13 rotating decision mix (bench_server.cpp), cache disabled so
// every request crosses the full pipeline — and all its failpoints.
Request MakeRequest(const std::string& sid, int i) {
  static const char* kQueries[] = {
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
      "{ x | x in Auto }",
      "{ x | exists y (x in Auto & y in Client & x in y.VehRented) }",
      "{ x | x in Trailer }",
  };
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = kQueries[i % 4];
  request.query2 = kQueries[(i + 1) % 4];
  return request;
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Run() {
  // ---- (1) Disarmed-check overhead --------------------------------------
  Failpoints::Reset();  // everything disarmed: the fast path under test
  constexpr uint64_t kChecks = 20'000'000;
  const uint64_t check_start = NowUs();
  uint64_t live = 0;
  for (uint64_t i = 0; i < kChecks; ++i) {
    live += Failpoints::Hit("bench/disarmed") ? 1 : 0;
  }
  const uint64_t check_us = NowUs() - check_start;
  if (live != kChecks) {
    std::fprintf(stderr, "FAIL: disarmed failpoint fired\n");
    return 1;
  }
  const double check_ns =
      static_cast<double>(check_us) * 1000.0 / static_cast<double>(kChecks);

  // Request latency of the mix, for scale.
  ServiceOptions options;
  OocqService service(options);
  StatusOr<std::string> created = service.CreateSession(kSchema);
  if (!created.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", created.status().ToString().c_str());
    return 1;
  }
  constexpr uint32_t kRequests = 400;
  std::vector<uint64_t> latencies;
  latencies.reserve(kRequests);
  for (uint32_t i = 0; i < kRequests; ++i) {
    Response response =
        service.Execute(MakeRequest(*created, static_cast<int>(i)));
    if (!response.status.ok()) {
      std::fprintf(stderr, "FAIL: request %u: %s\n", i,
                   response.status.ToString().c_str());
      return 1;
    }
    latencies.push_back(response.latency_us);
  }
  std::sort(latencies.begin(), latencies.end());
  const uint64_t p50_request_us = Percentile(latencies, 0.50);

  // A request crosses well under 64 failpoint sites (service/execute,
  // pool/dispatch, cache/lookup, one core/subset_scan per disjunct pair,
  // plus transport sites when served over TCP); 64 is a generous bound.
  constexpr double kChecksPerRequest = 64.0;
  const double overhead_pct =
      p50_request_us > 0
          ? (kChecksPerRequest * check_ns / 1000.0) /
                static_cast<double>(p50_request_us) * 100.0
          : 0.0;
  if (overhead_pct >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: disarmed failpoint overhead %.3f%% >= 1%% "
                 "(%.2f ns/check against p50 %llu us)\n",
                 overhead_pct, check_ns,
                 static_cast<unsigned long long>(p50_request_us));
    return 1;
  }

  // ---- (2) Recovery latency after an injected WAL fault -----------------
  const std::string dir = "bench_chaos_data";
  if (StatusOr<std::vector<std::string>> names = ListDir(dir); names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }
  persist::DurableCatalogOptions catalog_options;
  catalog_options.data_dir = dir;
  catalog_options.snapshot_interval_s = 0;
  catalog_options.group_commit_window_us = 0;
  StatusOr<std::unique_ptr<persist::DurableCatalog>> catalog =
      persist::DurableCatalog::Open(catalog_options);
  if (!catalog.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  ServiceOptions durable_options;
  durable_options.catalog = *std::move(catalog);
  OocqService durable(durable_options);
  StatusOr<std::string> sid = durable.CreateSession(kSchema);
  if (!sid.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", sid.status().ToString().c_str());
    return 1;
  }

  constexpr uint32_t kFaults = 50;
  std::vector<uint64_t> recovery_us;
  recovery_us.reserve(kFaults);
  for (uint32_t i = 0; i < kFaults; ++i) {
    // Re-arming restarts the hit counter: the next WAL fsync fails, the
    // one after succeeds — a one-shot transient fault per round.
    MustOk(Failpoints::Configure("wal/fsync=error@1"));
    const std::string name = "q" + std::to_string(i);
    const std::string text = "{ x | x in Auto }";
    const uint64_t fault_start = NowUs();
    Status faulted = durable.DefineQuery(*sid, name, text);
    if (faulted.ok() || !IsRetryable(faulted.code())) {
      std::fprintf(stderr, "FAIL: fault %u not injected retryably: %s\n", i,
                   faulted.ToString().c_str());
      return 1;
    }
    Status recovered = durable.DefineQuery(*sid, name, text);
    if (!recovered.ok()) {
      std::fprintf(stderr, "FAIL: retry %u: %s\n", i,
                   recovered.ToString().c_str());
      return 1;
    }
    recovery_us.push_back(NowUs() - fault_start);
  }
  Failpoints::Reset();
  std::sort(recovery_us.begin(), recovery_us.end());
  const uint64_t p50_recovery_us = Percentile(recovery_us, 0.50);
  const uint64_t p99_recovery_us = Percentile(recovery_us, 0.99);

  std::printf("disarmed check      %.2f ns  (overhead %.4f%% of p50 %llu us)\n",
              check_ns, overhead_pct,
              static_cast<unsigned long long>(p50_request_us));
  std::printf("fault->recovered    p50=%llu us  p99=%llu us  (%u WAL faults)\n",
              static_cast<unsigned long long>(p50_recovery_us),
              static_cast<unsigned long long>(p99_recovery_us), kFaults);

  std::FILE* out = std::fopen("BENCH_chaos.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_chaos.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"workload\": \"E13 containment mix + %u injected WAL "
               "fsync faults\",\n",
               kFaults);
  std::fprintf(out, "  \"disarmed_check_ns\": %.2f,\n", check_ns);
  std::fprintf(out, "  \"p50_request_us\": %llu,\n",
               static_cast<unsigned long long>(p50_request_us));
  std::fprintf(out, "  \"disarmed_overhead_pct\": %.4f,\n", overhead_pct);
  std::fprintf(out, "  \"p50_recovery_us\": %llu,\n",
               static_cast<unsigned long long>(p50_recovery_us));
  std::fprintf(out, "  \"p99_recovery_us\": %llu\n}\n",
               static_cast<unsigned long long>(p99_recovery_us));
  std::fclose(out);
  std::printf("wrote BENCH_chaos.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
