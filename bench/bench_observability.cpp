// Observability overhead benchmark: the same redundancy-heavy positive
// union (dense containment matrix, as in bench_parallel.cpp) pushed
// through MinimizePositiveUnion in three modes — sinks disabled, metrics
// collecting, and full tracing — plus a micro-measurement of the
// disabled-path cost of one span+counter site (a relaxed atomic load and
// branch each).
//
// Standalone binary (no google-benchmark): it cross-checks that all
// modes produce the byte-identical union, writes BENCH_observability.json
// and FAILS (exit 1) if the projected disabled-mode overhead — disabled
// per-site cost × sites per run, relative to the disabled run time —
// reaches 2%. The projection is used instead of differencing two macro
// timings because on a noisy single-core container the difference of two
// ~equal wall times measures the scheduler, not the instrumentation.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine_options.h"
#include "core/minimization.h"
#include "query/printer.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace oocq::bench {
namespace {

constexpr int kReps = 5;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

UnionQuery MakeRedundantUnion(const Schema& schema, int max_len,
                              int copies_per_len) {
  UnionQuery u;
  for (int len = 1; len <= max_len; ++len) {
    for (int copy = 0; copy < copies_per_len; ++copy) {
      u.disjuncts.push_back(MakeChainQuery(schema, len));
    }
  }
  return u;
}

double RunOnceMillis(const Schema& schema, const UnionQuery& input,
                     std::string* rendered) {
  const double start = NowMs();
  MinimizationReport report = Must(MinimizePositiveUnion(schema, input, {}));
  const double stop = NowMs();
  *rendered = UnionQueryToString(schema, report.minimized);
  return stop - start;
}

double BestOfReps(const Schema& schema, const UnionQuery& input,
                  std::string* rendered) {
  double best = -1;
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = RunOnceMillis(schema, input, rendered);
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// Nanoseconds per *disabled* instrumentation site: one OOCQ_TRACE_SPAN
/// plus one MetricAdd with no session/scope installed. The span's
/// recording() result feeds a volatile sink so the loop cannot be
/// folded away.
double DisabledSiteNanos() {
  constexpr uint64_t kIters = 1 << 22;
  volatile uint64_t sink = 0;
  const double start = NowMs();
  for (uint64_t i = 0; i < kIters; ++i) {
    OOCQ_TRACE_SPAN(span, "disabled_site");
    MetricAdd("disabled/counter", 1);
    sink = sink + (span.recording() ? 1 : 0);
  }
  const double stop = NowMs();
  return (stop - start) * 1e6 / static_cast<double>(kIters);
}

int Run() {
  const Schema schema = MakeChainSchema();
  const UnionQuery input =
      MakeRedundantUnion(schema, /*max_len=*/8, /*copies_per_len=*/2);

  // Mode 1: sinks disabled (every site is a closed gate).
  std::string rendered_disabled;
  const double disabled_ms = BestOfReps(schema, input, &rendered_disabled);

  // Mode 2: metrics collecting. Histogram counts are true event counts
  // (one Record per sample); counter values are not (Add takes deltas),
  // so counter traffic is bounded structurally below instead.
  std::string rendered_metrics;
  double metrics_ms;
  uint64_t histogram_events = 0;
  {
    MetricsRegistry registry;
    MetricsScope scope(&registry);
    metrics_ms = BestOfReps(schema, input, &rendered_metrics);
    for (const auto& histogram : registry.Snap().histograms) {
      histogram_events += histogram.count;
    }
  }

  // Mode 3: full tracing (implies metrics) + timed Chrome export.
  std::string rendered_traced;
  double traced_ms;
  double export_ms;
  size_t spans_per_run;
  {
    TraceLog log;
    MetricsRegistry registry;
    MetricsScope scope(&registry);
    {
      TraceSession session(&log);
      traced_ms = BestOfReps(schema, input, &rendered_traced);
    }
    const double export_start = NowMs();
    const std::string json = log.ChromeTraceJson();
    export_ms = NowMs() - export_start;
    // All kReps repetitions recorded into one log.
    spans_per_run = log.events().size() / kReps;
    if (json.empty()) return 1;
  }

  if (rendered_metrics != rendered_disabled ||
      rendered_traced != rendered_disabled) {
    std::fprintf(stderr, "FAIL: observability changed the minimized union\n");
    return 1;
  }

  const double site_ns = DisabledSiteNanos();
  // Instrumentation sites executed per run: every span plus the counter
  // updates adjacent to it. No span site in the engine issues more than
  // 8 MetricAdd calls, so spans×(1+8) plus the exact histogram event
  // count is a deliberate overcount.
  const double sites_per_run =
      static_cast<double>(spans_per_run) * 9.0 +
      static_cast<double>(histogram_events) / kReps;
  const double disabled_overhead_pct =
      100.0 * (site_ns * sites_per_run) / (disabled_ms * 1e6);
  const double metrics_overhead_pct =
      100.0 * (metrics_ms - disabled_ms) / disabled_ms;
  const double traced_overhead_pct =
      100.0 * (traced_ms - disabled_ms) / disabled_ms;

  std::FILE* out = std::fopen("BENCH_observability.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_observability.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"workload\": \"MinimizePositiveUnion over %zu redundant "
               "chain disjuncts\",\n"
               "  \"disabled_ms\": %.3f,\n"
               "  \"metrics_ms\": %.3f,\n"
               "  \"traced_ms\": %.3f,\n"
               "  \"chrome_export_ms\": %.3f,\n"
               "  \"spans_per_run\": %zu,\n"
               "  \"projected_sites_per_run\": %.0f,\n"
               "  \"disabled_site_ns\": %.2f,\n"
               "  \"disabled_overhead_pct\": %.4f,\n"
               "  \"metrics_overhead_pct\": %.2f,\n"
               "  \"traced_overhead_pct\": %.2f\n"
               "}\n",
               input.disjuncts.size(), disabled_ms, metrics_ms, traced_ms,
               export_ms, spans_per_run, sites_per_run, site_ns,
               disabled_overhead_pct, metrics_overhead_pct,
               traced_overhead_pct);
  std::fclose(out);

  std::printf("disabled   %8.3f ms\n", disabled_ms);
  std::printf("metrics    %8.3f ms  (%+.2f%%)\n", metrics_ms,
              metrics_overhead_pct);
  std::printf("traced     %8.3f ms  (%+.2f%%), %zu spans, export %.3f ms\n",
              traced_ms, traced_overhead_pct, spans_per_run, export_ms);
  std::printf("disabled site: %.2f ns -> projected overhead %.4f%%\n",
              site_ns, disabled_overhead_pct);

  if (disabled_overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: disabled-mode overhead %.4f%% >= 2%% budget\n",
                 disabled_overhead_pct);
    return 1;
  }
  std::printf("disabled-mode overhead within 2%% budget; wrote "
              "BENCH_observability.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
