// Observability overhead benchmark: the same redundancy-heavy positive
// union (dense containment matrix, as in bench_parallel.cpp) pushed
// through MinimizePositiveUnion in three modes — sinks disabled, metrics
// collecting, and full tracing — plus a micro-measurement of the
// disabled-path cost of one span+counter site (a relaxed atomic load and
// branch each).
//
// Standalone binary (no google-benchmark): it cross-checks that all
// modes produce the byte-identical union, writes BENCH_observability.json
// and FAILS (exit 1) if the projected disabled-mode overhead — disabled
// per-site cost × sites per run, relative to the disabled run time —
// reaches 2%. The projection is used instead of differencing two macro
// timings because on a noisy single-core container the difference of two
// ~equal wall times measures the scheduler, not the instrumentation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine_options.h"
#include "core/minimization.h"
#include "query/printer.h"
#include "server/service.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace oocq::bench {
namespace {

constexpr int kReps = 5;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

UnionQuery MakeRedundantUnion(const Schema& schema, int max_len,
                              int copies_per_len) {
  UnionQuery u;
  for (int len = 1; len <= max_len; ++len) {
    for (int copy = 0; copy < copies_per_len; ++copy) {
      u.disjuncts.push_back(MakeChainQuery(schema, len));
    }
  }
  return u;
}

double RunOnceMillis(const Schema& schema, const UnionQuery& input,
                     std::string* rendered) {
  const double start = NowMs();
  MinimizationReport report = Must(MinimizePositiveUnion(schema, input, {}));
  const double stop = NowMs();
  *rendered = UnionQueryToString(schema, report.minimized);
  return stop - start;
}

double BestOfReps(const Schema& schema, const UnionQuery& input,
                  std::string* rendered) {
  double best = -1;
  for (int rep = 0; rep < kReps; ++rep) {
    const double ms = RunOnceMillis(schema, input, rendered);
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// Nanoseconds per *disabled* instrumentation site: one OOCQ_TRACE_SPAN
/// plus one MetricAdd with no session/scope installed. The span's
/// recording() result feeds a volatile sink so the loop cannot be
/// folded away.
double DisabledSiteNanos() {
  constexpr uint64_t kIters = 1 << 22;
  volatile uint64_t sink = 0;
  const double start = NowMs();
  for (uint64_t i = 0; i < kIters; ++i) {
    OOCQ_TRACE_SPAN(span, "disabled_site");
    MetricAdd("disabled/counter", 1);
    sink = sink + (span.recording() ? 1 : 0);
  }
  const double stop = NowMs();
  return (stop - start) * 1e6 / static_cast<double>(kIters);
}

// ---- Server-suite telemetry overhead ------------------------------------
//
// The macro gate the telemetry plane ships under: the bench_server
// request mix through OocqService with the whole plane off (no metrics
// registry, logging off) versus fully on (metrics + per-verb histograms,
// logging configured at info, a scraper thread rendering the Prometheus
// STATS text every 250ms — 40x more often than oocq_serve's default
// --stats_interval_s=10). The scrape itself is per-cadence, not
// per-request, so it gets its own gate (render time amortized over the
// 250ms cadence must stay under 1%) instead of being billed to whatever
// requests share its ~10ms timed window. The estimator is the
// median of per-rep paired ratios: each rep times off then on back to
// back (adjacent in time, so a machine-load burst lands on both sides
// or inflates just that pair's ratio), and the median across reps
// discards the contaminated pairs. Best-of totals proved too fragile on
// a shared container — one noisy window under every on-rep skews a min
// statistic, but not a median of pairs.

struct ServerSuiteSample {
  double total_ms = 0;   // median-rep wall time for the whole mix
  uint64_t p50_us = 0;   // median rep's per-request latency median
};

server::Request MakeServerRequest(const std::string& sid, int i) {
  static const char* kQueries[] = {
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
      "{ x | x in Auto }",
      "{ x | exists y (x in Auto & y in Client & x in y.VehRented) }",
      "{ x | x in Trailer }",
  };
  server::Request request;
  request.kind = server::RequestKind::kContained;
  request.session_id = sid;
  request.query = kQueries[i % 4];
  request.query2 = kQueries[(i + 1) % 4];
  return request;
}

int RunServerRep(bool telemetry, int requests, double* elapsed_ms,
                 std::vector<uint64_t>* latencies) {
  server::ServiceOptions options;
  options.max_in_flight = 4;
  options.metrics = telemetry;
  // Slow-request capture (slow_request_us) and tracing stay off in both
  // modes: like a TraceSession, the capture is an opt-in diagnostic, not
  // part of the default-on telemetry plane this gate prices.
  LogConfig log_config;
  log_config.level = telemetry ? LogLevel::kInfo : LogLevel::kOff;
  ConfigureLogging(log_config);

  server::OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(R"(
schema Bench {
  class Vehicle { }
  class Auto under Vehicle { }
  class Trailer under Vehicle { }
  class Client { VehRented: {Vehicle}; }
  class Discount under Client { VehRented: {Auto}; }
}
)");
  if (!sid.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", sid.status().ToString().c_str());
    return 1;
  }

  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  if (telemetry) {
    // Sleeps before the first scrape: a rep's timed window is ~10ms, so
    // an immediate scrape would land inside every window and bill the
    // whole render to ~500 requests — a cadence no deployment runs
    // (oocq_serve's default is one render per 10 s). The render cost is
    // measured and gated separately (stats_render_us / scrape gate).
    scraper = std::thread([&] {
      while (!stop_scraper.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        if (stop_scraper.load(std::memory_order_acquire)) break;
        volatile size_t sink = service.StatsText().size();
        (void)sink;
      }
    });
  }

  latencies->clear();
  latencies->reserve(requests);
  const double start = NowMs();
  for (int i = 0; i < requests; ++i) {
    server::Response response = service.Execute(MakeServerRequest(*sid, i));
    if (!response.status.ok()) {
      stop_scraper.store(true, std::memory_order_release);
      if (scraper.joinable()) scraper.join();
      std::fprintf(stderr, "FAIL: %s\n", response.status.ToString().c_str());
      return 1;
    }
    latencies->push_back(response.latency_us);
  }
  *elapsed_ms = NowMs() - start;
  stop_scraper.store(true, std::memory_order_release);
  if (scraper.joinable()) scraper.join();
  return 0;
}

int RunServerSuite(ServerSuiteSample* off, ServerSuiteSample* on,
                   double* overhead_pct) {
  constexpr int kRequests = 500;
  constexpr int kSuiteReps = 11;
  constexpr int kLegsPerMode = 4;

  // Three layers of noise defense, each against a different noise scale:
  //  * within a leg, a 20%-trimmed mean of its 500 per-request latencies
  //    discards burst-inflated samples and washes out the 1us latency
  //    quantization that makes a p50-vs-p50 comparison useless at 20us;
  //  * within a rep, the two modes' legs interleave tightly
  //    (off,on,off,on,...), the leg order alternating per rep, and each
  //    mode keeps its *minimum* leg mean — a load window lasting a few
  //    legs inflates whichever legs it overlaps, and the min discards
  //    them; one spanning the whole rep inflates both modes' minima and
  //    cancels in the ratio;
  //  * the gated overhead is the lower-quartile per-rep ratio. On a
  //    shared single-core box (this container: 1 vCPU with steal time),
  //    contamination is one-sided — load can only inflate a leg — so
  //    low quantiles estimate the uncontaminated ratio, the same
  //    principle as min-time benchmarking. A real per-request
  //    regression shifts every rep's ratio and moves the quartile with
  //    it; a median proved flaky here (sustained background IO after a
  //    build can contaminate half the reps).
  struct Rep {
    double off_ms, on_ms;
    double off_mean_us, on_mean_us;
    uint64_t off_p50, on_p50;
    double ratio;
  };
  auto trimmed_mean = [](std::vector<uint64_t>* samples) {
    std::sort(samples->begin(), samples->end());
    const size_t trim = samples->size() / 5;  // 20% off each side
    double sum = 0;
    for (size_t i = trim; i < samples->size() - trim; ++i) {
      sum += static_cast<double>((*samples)[i]);
    }
    return sum / static_cast<double>(samples->size() - 2 * trim);
  };
  std::vector<Rep> reps;
  std::vector<uint64_t> rep_latencies;
  for (int rep = 0; rep < kSuiteReps; ++rep) {
    Rep sample{};
    sample.off_mean_us = sample.on_mean_us = -1;
    const bool on_first = (rep % 2) == 1;
    for (int leg = 0; leg < 2 * kLegsPerMode; ++leg) {
      const bool telemetry = (leg % 2 == 0) == on_first;
      double elapsed = 0;
      if (int rc = RunServerRep(telemetry, kRequests, &elapsed,
                                &rep_latencies);
          rc != 0) {
        return rc;
      }
      const double mean_us = trimmed_mean(&rep_latencies);
      double* best = telemetry ? &sample.on_mean_us : &sample.off_mean_us;
      if (*best >= 0 && mean_us >= *best) continue;
      *best = mean_us;
      // rep_latencies is sorted by the trimmed-mean pass.
      uint64_t p50 = rep_latencies[rep_latencies.size() / 2];
      (telemetry ? sample.on_p50 : sample.off_p50) = p50;
      (telemetry ? sample.on_ms : sample.off_ms) = elapsed;
    }
    sample.ratio = sample.on_mean_us / sample.off_mean_us;
    reps.push_back(sample);
  }

  std::sort(reps.begin(), reps.end(),
            [](const Rep& a, const Rep& b) { return a.ratio < b.ratio; });
  const Rep& quartile = reps[reps.size() / 4];
  off->total_ms = quartile.off_ms;
  off->p50_us = quartile.off_p50;
  on->total_ms = quartile.on_ms;
  on->p50_us = quartile.on_p50;
  *overhead_pct = (quartile.ratio - 1.0) * 100.0;
  return 0;
}

int Run() {
  const Schema schema = MakeChainSchema();
  const UnionQuery input =
      MakeRedundantUnion(schema, /*max_len=*/8, /*copies_per_len=*/2);

  // Mode 1: sinks disabled (every site is a closed gate).
  std::string rendered_disabled;
  const double disabled_ms = BestOfReps(schema, input, &rendered_disabled);

  // Mode 2: metrics collecting. Histogram counts are true event counts
  // (one Record per sample); counter values are not (Add takes deltas),
  // so counter traffic is bounded structurally below instead.
  std::string rendered_metrics;
  double metrics_ms;
  uint64_t histogram_events = 0;
  {
    MetricsRegistry registry;
    MetricsScope scope(&registry);
    metrics_ms = BestOfReps(schema, input, &rendered_metrics);
    for (const auto& histogram : registry.Snap().histograms) {
      histogram_events += histogram.count;
    }
  }

  // Mode 3: full tracing (implies metrics) + timed Chrome export.
  std::string rendered_traced;
  double traced_ms;
  double export_ms;
  size_t spans_per_run;
  {
    TraceLog log;
    MetricsRegistry registry;
    MetricsScope scope(&registry);
    {
      TraceSession session(&log);
      traced_ms = BestOfReps(schema, input, &rendered_traced);
    }
    const double export_start = NowMs();
    const std::string json = log.ChromeTraceJson();
    export_ms = NowMs() - export_start;
    // All kReps repetitions recorded into one log.
    spans_per_run = log.events().size() / kReps;
    if (json.empty()) return 1;
  }

  if (rendered_metrics != rendered_disabled ||
      rendered_traced != rendered_disabled) {
    std::fprintf(stderr, "FAIL: observability changed the minimized union\n");
    return 1;
  }

  // Server suite: telemetry plane fully off vs fully on, interleaved.
  ServerSuiteSample server_off, server_on;
  double server_overhead_pct = 0;
  if (int rc = RunServerSuite(&server_off, &server_on, &server_overhead_pct);
      rc != 0) {
    return rc;
  }

  // The STATS render is priced on its own axis: it is per-scrape, not
  // per-request, so its cost scales with the scrape cadence rather than
  // the request rate. Best-of-5 renders of a populated registry,
  // amortized over the bench's aggressive 250ms cadence (40x
  // oocq_serve's default 10s).
  double stats_render_us = 0;
  {
    server::ServiceOptions options;
    options.metrics = true;
    server::OocqService service(options);
    StatusOr<std::string> sid = service.CreateSession(
        "schema S { class A { } class A1 under A { } }");
    if (!sid.ok()) return 1;
    server::Request request;
    request.kind = server::RequestKind::kContained;
    request.session_id = *sid;
    request.query = "{ x | x in A1 }";
    request.query2 = "{ x | x in A }";
    for (int i = 0; i < 64; ++i) {
      if (!service.Execute(request).status.ok()) return 1;
    }
    double best = -1;
    for (int i = 0; i < 5; ++i) {
      const double start = NowMs();
      volatile size_t sink = service.StatsText().size();
      (void)sink;
      const double us = (NowMs() - start) * 1000.0;
      if (best < 0 || us < best) best = us;
    }
    stats_render_us = best;
  }
  const double scrape_overhead_pct = 100.0 * stats_render_us / 250e3;

  const double site_ns = DisabledSiteNanos();
  // Instrumentation sites executed per run: every span plus the counter
  // updates adjacent to it. No span site in the engine issues more than
  // 8 MetricAdd calls, so spans×(1+8) plus the exact histogram event
  // count is a deliberate overcount.
  const double sites_per_run =
      static_cast<double>(spans_per_run) * 9.0 +
      static_cast<double>(histogram_events) / kReps;
  const double disabled_overhead_pct =
      100.0 * (site_ns * sites_per_run) / (disabled_ms * 1e6);
  const double metrics_overhead_pct =
      100.0 * (metrics_ms - disabled_ms) / disabled_ms;
  const double traced_overhead_pct =
      100.0 * (traced_ms - disabled_ms) / disabled_ms;

  std::FILE* out = std::fopen("BENCH_observability.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_observability.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"workload\": \"MinimizePositiveUnion over %zu redundant "
               "chain disjuncts\",\n"
               "  \"disabled_ms\": %.3f,\n"
               "  \"metrics_ms\": %.3f,\n"
               "  \"traced_ms\": %.3f,\n"
               "  \"chrome_export_ms\": %.3f,\n"
               "  \"spans_per_run\": %zu,\n"
               "  \"projected_sites_per_run\": %.0f,\n"
               "  \"disabled_site_ns\": %.2f,\n"
               "  \"disabled_overhead_pct\": %.4f,\n"
               "  \"metrics_overhead_pct\": %.2f,\n"
               "  \"traced_overhead_pct\": %.2f,\n"
               "  \"server_suite_off_ms\": %.3f,\n"
               "  \"server_suite_on_ms\": %.3f,\n"
               "  \"server_suite_off_p50_us\": %llu,\n"
               "  \"server_suite_on_p50_us\": %llu,\n"
               "  \"server_telemetry_overhead_pct\": %.2f,\n"
               "  \"stats_render_us\": %.1f,\n"
               "  \"scrape_overhead_pct_at_250ms\": %.4f\n"
               "}\n",
               input.disjuncts.size(), disabled_ms, metrics_ms, traced_ms,
               export_ms, spans_per_run, sites_per_run, site_ns,
               disabled_overhead_pct, metrics_overhead_pct,
               traced_overhead_pct, server_off.total_ms, server_on.total_ms,
               static_cast<unsigned long long>(server_off.p50_us),
               static_cast<unsigned long long>(server_on.p50_us),
               server_overhead_pct, stats_render_us, scrape_overhead_pct);
  std::fclose(out);

  std::printf("disabled   %8.3f ms\n", disabled_ms);
  std::printf("metrics    %8.3f ms  (%+.2f%%)\n", metrics_ms,
              metrics_overhead_pct);
  std::printf("traced     %8.3f ms  (%+.2f%%), %zu spans, export %.3f ms\n",
              traced_ms, traced_overhead_pct, spans_per_run, export_ms);
  std::printf("disabled site: %.2f ns -> projected overhead %.4f%%\n",
              site_ns, disabled_overhead_pct);

  std::printf("server suite  off %8.3f ms (p50=%llu us)  "
              "on %8.3f ms (p50=%llu us)  (%+.2f%%)\n",
              server_off.total_ms,
              static_cast<unsigned long long>(server_off.p50_us),
              server_on.total_ms,
              static_cast<unsigned long long>(server_on.p50_us),
              server_overhead_pct);
  std::printf("stats render  %8.1f us -> %.4f%% at a 250ms scrape cadence\n",
              stats_render_us, scrape_overhead_pct);

  if (disabled_overhead_pct >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: disabled-mode overhead %.4f%% >= 2%% budget\n",
                 disabled_overhead_pct);
    return 1;
  }
  if (server_overhead_pct >= 3.0) {
    std::fprintf(stderr,
                 "FAIL: fully-enabled telemetry costs %.2f%% >= 3%% of the "
                 "server suite\n",
                 server_overhead_pct);
    return 1;
  }
  if (scrape_overhead_pct >= 1.0) {
    std::fprintf(stderr,
                 "FAIL: STATS render %.1f us is %.2f%% >= 1%% of a 250ms "
                 "scrape cadence\n",
                 stats_render_us, scrape_overhead_pct);
    return 1;
  }
  std::printf("disabled-mode overhead within 2%% budget, enabled telemetry "
              "within 3%%, scrape render within 1%% of its cadence; wrote "
              "BENCH_observability.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
