// E8 — optimizer-in-the-loop throughput: batches of randomized queries
// pushed through the public pipeline, the workload shape a query
// optimizer integrating this library would see.
//
// Series reproduced:
//  * Workload/Minimize: full MinimizePositiveQuery throughput over random
//    positive queries (queries/second scale).
//  * Workload/ContainmentMatrix/k: all-pairs containment over a batch of
//    k random terminal queries (view-selection style usage).
//  * Workload/Satisfiability: satisfiability screening throughput.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "core/containment.h"
#include "core/containment_cache.h"
#include "core/minimization.h"
#include "core/satisfiability.h"
#include "query/well_formed.h"
#include "support/cancellation.h"
#include "../tests/random_query.h"

namespace oocq {
namespace {

const char* const kWorkloadSchema = R"(
schema Workload {
  class D { }
  class E under D { }
  class F under D { }
  class G under D { }
  class C { A: D; B: E; S: {D}; T: {E}; }
  class C1 under C { }
  class C2 under C { }
})";

std::vector<ConjunctiveQuery> MakeBatch(const Schema& schema, size_t count,
                                        bool terminal_only, bool negative,
                                        uint64_t seed) {
  std::mt19937_64 rng(seed);
  testing::RandomQueryParams params;
  params.terminal_only = terminal_only;
  params.allow_negative = negative;
  params.max_vars = 4;
  params.max_extra_atoms = 4;
  std::vector<ConjunctiveQuery> batch;
  while (batch.size() < count) {
    ConjunctiveQuery query = testing::GenerateRandomQuery(schema, rng, params);
    if (!CheckWellFormed(schema, query).ok()) continue;
    batch.push_back(std::move(query));
  }
  return batch;
}

void BM_WorkloadMinimize(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(kWorkloadSchema));
  std::vector<ConjunctiveQuery> batch =
      MakeBatch(schema, 32, /*terminal_only=*/false, /*negative=*/false, 7);
  size_t disjuncts = 0;
  for (auto _ : state) {
    disjuncts = 0;
    for (const ConjunctiveQuery& query : batch) {
      StatusOr<MinimizationReport> report =
          MinimizePositiveQuery(schema, query);
      if (report.ok()) disjuncts += report->minimized.disjuncts.size();
    }
    benchmark::DoNotOptimize(disjuncts);
  }
  state.counters["queries"] = static_cast<double>(batch.size());
  state.counters["out_disjuncts"] = static_cast<double>(disjuncts);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_WorkloadMinimize);

void BM_WorkloadContainmentMatrix(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Schema schema = bench::Must(ParseSchema(kWorkloadSchema));
  std::vector<ConjunctiveQuery> batch =
      MakeBatch(schema, k, /*terminal_only=*/true, /*negative=*/true, 11);
  uint64_t contained = 0;
  uint64_t decided = 0;
  for (auto _ : state) {
    contained = decided = 0;
    for (const ConjunctiveQuery& a : batch) {
      for (const ConjunctiveQuery& b : batch) {
        StatusOr<bool> result = Contained(schema, a, b);
        if (result.ok()) {
          ++decided;
          if (*result) ++contained;
        }
      }
    }
    benchmark::DoNotOptimize(contained);
  }
  state.counters["decided"] = static_cast<double>(decided);
  state.counters["contained"] = static_cast<double>(contained);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(k * k));
}
BENCHMARK(BM_WorkloadContainmentMatrix)->Arg(8)->Arg(16)->Arg(32);

// The canonical-key cache on a matrix with renamed duplicates (each query
// appears under three different variable namings — the view-catalog
// shape). Negative atoms make the underlying decisions expensive enough
// to amortize canonicalization; on cheap positive batches the cache
// overhead dominates (measured by flipping MakeBatch's `negative`).
void BM_WorkloadContainmentMatrixCached(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  Schema schema = bench::Must(ParseSchema(kWorkloadSchema));
  std::vector<ConjunctiveQuery> base =
      MakeBatch(schema, 8, /*terminal_only=*/true, /*negative=*/true, 17);
  std::vector<ConjunctiveQuery> batch;
  for (const ConjunctiveQuery& q : base) {
    batch.push_back(q);
    for (int copy = 0; copy < 2; ++copy) {
      ConjunctiveQuery renamed;
      for (VarId v = 0; v < q.num_vars(); ++v) {
        renamed.AddVariable("r" + std::to_string(copy) + "_" +
                            std::to_string(v));
      }
      renamed.set_free_var(q.free_var());
      for (const Atom& atom : q.atoms()) renamed.AddAtom(atom);
      batch.push_back(std::move(renamed));
    }
  }
  uint64_t contained = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    contained = 0;
    ContainmentCache cache(&schema);
    for (const ConjunctiveQuery& a : batch) {
      for (const ConjunctiveQuery& b : batch) {
        StatusOr<bool> result = cached ? cache.Contained(a, b)
                                       : Contained(schema, a, b);
        if (result.ok() && *result) ++contained;
      }
    }
    hits = cache.hits();
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] = static_cast<double>(contained);
  state.counters["cache_hits"] = static_cast<double>(hits);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size() * batch.size()));
}
BENCHMARK(BM_WorkloadContainmentMatrixCached)
    ->ArgNames({"cached"})
    ->Arg(0)
    ->Arg(1);

// Cancellation overhead and teardown: every minimization carries a live
// (never-tripped) deadline token, the request-with-deadline shape the
// server puts on this exact pipeline. Verdict parity with the token-free
// BM_WorkloadMinimize run is asserted every iteration — a token that is
// polled but never trips must not change results or leak state.
void BM_WorkloadMinimizeCancelled(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(kWorkloadSchema));
  std::vector<ConjunctiveQuery> batch =
      MakeBatch(schema, 32, /*terminal_only=*/false, /*negative=*/false, 7);
  size_t baseline_disjuncts = 0;
  for (const ConjunctiveQuery& query : batch) {
    StatusOr<MinimizationReport> report = MinimizePositiveQuery(schema, query);
    if (report.ok()) baseline_disjuncts += report->minimized.disjuncts.size();
  }
  size_t disjuncts = 0;
  for (auto _ : state) {
    disjuncts = 0;
    CancellationToken token = CancellationToken::AfterMillis(60'000);
    MinimizationOptions options;
    options.containment.cancel = &token;
    for (const ConjunctiveQuery& query : batch) {
      StatusOr<MinimizationReport> report =
          MinimizePositiveQuery(schema, query, options);
      if (report.ok()) disjuncts += report->minimized.disjuncts.size();
    }
    if (disjuncts != baseline_disjuncts) {
      state.SkipWithError("cancelled-token run diverged from baseline");
      break;
    }
    benchmark::DoNotOptimize(disjuncts);
  }
  state.counters["queries"] = static_cast<double>(batch.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_WorkloadMinimizeCancelled);

void BM_WorkloadSatisfiability(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(kWorkloadSchema));
  std::vector<ConjunctiveQuery> batch =
      MakeBatch(schema, 64, /*terminal_only=*/true, /*negative=*/true, 13);
  uint64_t satisfiable = 0;
  for (auto _ : state) {
    satisfiable = 0;
    for (const ConjunctiveQuery& query : batch) {
      if (CheckSatisfiable(schema, query).satisfiable) ++satisfiable;
    }
    benchmark::DoNotOptimize(satisfiable);
  }
  state.counters["satisfiable"] = static_cast<double>(satisfiable);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_WorkloadSatisfiability);

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
