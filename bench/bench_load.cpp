// Open-loop transport load generator — the proof for the event-driven
// server core. Drives 10k+ concurrent loopback sockets of CONTAIN
// traffic against each transport and writes BENCH_load.json with
// p50/p99/p999 against an SLO.
//
// Open loop means the request schedule is fixed in advance (an
// aggregate rate spread round-robin over the sockets) and never slows
// down because the server is slow: a request's latency is measured from
// its *scheduled* send time, so queueing delay the server causes shows
// up in the tail instead of silently throttling the generator
// (coordinated omission).
//
// Process layout: the benchmark re-execs itself (`--client_mode`) as a
// child for the client half, so the 2x fd cost of N loopback sockets
// splits across two fd tables (the container caps each process at 20k
// fds — one process cannot hold both ends of 10k+ connections plus the
// server's listener). The parent runs OocqService plus the transport
// under test in-process and reads the child's results from a temp file.
//
// The client half is itself event-driven: one epoll loop owns every
// socket, non-blocking connects (paced), buffered writes, incremental
// reply framing — the same discipline the event server uses, because a
// thread-per-socket client could not reach 10k sockets either.
//
// Exit status: non-zero when the event transport misses the SLO
// (connects refused, p99 over budget, or requests left unanswered), so
// CI can run this binary as a gate. The thread transport's numbers are
// reported for comparison but not gated — degrading at this scale is
// the expected outcome that motivates the event transport.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flag_util.h"
#include "server/event_server.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "server/transport.h"

namespace oocq::bench {
namespace {

using server::EventServer;
using server::EventServerOptions;
using server::OocqService;
using server::ServiceOptions;
using server::TcpServer;
using server::TcpServerOptions;
using server::Transport;

constexpr const char* kSchema = R"(
schema Bench {
  class Vehicle { }
  class Auto under Vehicle { }
  class Trailer under Vehicle { }
  class Client { VehRented: {Vehicle}; }
  class Discount under Client { VehRented: {Auto}; }
}
)";

// Same rotating containment mix as bench_server: repeats hit the
// session's containment cache, which is the realistic steady state for
// a view catalog and keeps a single core able to answer thousands of
// decisions per second.
const char* kQueries[] = {
    "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
    "{ x | x in Auto }",
    "{ x | exists y (x in Auto & y in Client & x in y.VehRented) }",
    "{ x | x in Trailer }",
};

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Both halves need their fd table far beyond the default soft limit.
void RaiseFdLimit() {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

// ---------------------------------------------------------------------------
// Client half (the re-exec'd child): one epoll loop over all sockets.

struct ClientConn {
  int fd = -1;
  bool connected = false;  // non-blocking connect completed
  bool dead = false;
  std::string outbuf;      // unsent request bytes
  size_t out_off = 0;
  bool want_write = false;
  std::string inbuf;       // reply bytes pending framing
  size_t line_start = 0;
  size_t scan = 0;
  bool frame_is_err = false;
  bool at_frame_start = true;
  std::deque<uint64_t> scheduled_us;  // send times of outstanding requests
};

struct ClientStats {
  uint64_t connected = 0;
  uint64_t connect_failures = 0;
  uint64_t dropped_conns = 0;   // established, then closed under us
  uint64_t sent = 0;
  uint64_t completed = 0;       // OK replies, latency recorded
  uint64_t err_replies = 0;     // ERR frames (service/transport shedding)
  uint64_t missed = 0;          // scheduled onto an already-dead socket
  uint64_t unanswered = 0;      // outstanding at grace expiry
  std::vector<uint64_t> latencies_us;
};

class OpenLoopClient {
 public:
  OpenLoopClient(uint16_t port, uint32_t sockets, uint64_t rate,
                 uint64_t duration_s, std::string session)
      : port_(port), sockets_(sockets), rate_(rate),
        total_sends_(rate * duration_s), session_(std::move(session)) {}

  int Run(ClientStats* stats) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) {
      std::perror("epoll_create1");
      return 1;
    }
    for (int i = 0; i < 4; ++i) {
      requests_[i] = std::string("CONTAIN ") + session_ + "\n" +
                     kQueries[i % 4] + "\n" + kQueries[(i + 1) % 4] + "\n.\n";
    }
    conns_.resize(sockets_);
    if (!ConnectAll(stats)) return 1;
    Drive(stats);
    for (ClientConn& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    ::close(epoll_fd_);
    return 0;
  }

 private:
  // Establishes all sockets before the measured phase, pacing the
  // non-blocking connects so at most kMaxPending sit in the handshake at
  // once (the listen backlog is finite; a 10k SYN burst would overflow
  // it and turn into spurious failures).
  bool ConnectAll(ClientStats* stats) {
    constexpr uint32_t kMaxPending = 512;
    uint32_t started = 0, resolved = 0, pending = 0;
    const uint64_t deadline_us = NowUs() + 60 * 1000 * 1000;
    std::vector<epoll_event> events(1024);
    while (resolved < sockets_) {
      while (started < sockets_ && pending < kMaxPending) {
        StartConnect(started++, stats, &pending, &resolved);
      }
      if (resolved == sockets_) break;
      if (NowUs() > deadline_us) {
        std::fprintf(stderr, "client: connect phase timed out (%u/%u)\n",
                     resolved, sockets_);
        return false;
      }
      int n = ::epoll_wait(epoll_fd_, events.data(),
                           static_cast<int>(events.size()), 100);
      for (int i = 0; i < n; ++i) {
        uint32_t index = static_cast<uint32_t>(events[i].data.u64);
        ClientConn& conn = conns_[index];
        if (conn.connected || conn.dead) continue;
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        ++resolved;
        --pending;
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
          ::close(conn.fd);
          conn.fd = -1;
          conn.dead = true;
          ++stats->connect_failures;
          continue;
        }
        conn.connected = true;
        ++stats->connected;
        Rearm(index, /*want_write=*/false);
      }
    }
    return true;
  }

  void StartConnect(uint32_t index, ClientStats* stats, uint32_t* pending,
                    uint32_t* resolved) {
    ClientConn& conn = conns_[index];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (conn.fd < 0) {
      conn.dead = true;
      ++*resolved;
      ++stats->connect_failures;
      return;
    }
    int nodelay = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof(nodelay));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    int rc = ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(conn.fd);
      conn.fd = -1;
      conn.dead = true;
      ++*resolved;
      ++stats->connect_failures;
      return;
    }
    // Loopback connects may complete synchronously (rc == 0); EPOLLOUT
    // still fires and the SO_ERROR check in ConnectAll resolves it, so
    // both paths go through the same epoll registration.
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.u64 = index;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev);
    ++*pending;
  }

  void Rearm(uint32_t index, bool want_write) {
    ClientConn& conn = conns_[index];
    conn.want_write = want_write;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.u64 = index;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void Kill(uint32_t index, ClientStats* stats) {
    ClientConn& conn = conns_[index];
    if (conn.dead) return;
    stats->unanswered += conn.scheduled_us.size();
    outstanding_ -= conn.scheduled_us.size();
    conn.scheduled_us.clear();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    conn.dead = true;
    ++stats->dropped_conns;
  }

  void FlushWrites(uint32_t index, ClientStats* stats) {
    ClientConn& conn = conns_[index];
    while (conn.out_off < conn.outbuf.size()) {
      ssize_t n = ::send(conn.fd, conn.outbuf.data() + conn.out_off,
                         conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) Rearm(index, /*want_write=*/true);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      Kill(index, stats);
      return;
    }
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.want_write) Rearm(index, /*want_write=*/false);
  }

  // Incremental reply framing: a frame ends at a line holding only ".".
  // The first line of a frame carries the status.
  void ParseReplies(uint32_t index, ClientStats* stats) {
    ClientConn& conn = conns_[index];
    while (true) {
      size_t nl = conn.inbuf.find('\n', conn.scan);
      if (nl == std::string::npos) {
        conn.scan = conn.inbuf.size();
        break;
      }
      if (conn.at_frame_start) {
        conn.frame_is_err = conn.inbuf.compare(conn.line_start, 3, "ERR") == 0;
        conn.at_frame_start = false;
      }
      bool frame_done = nl == conn.line_start + 1 &&
                        conn.inbuf[conn.line_start] == '.';
      conn.line_start = nl + 1;
      conn.scan = nl + 1;
      if (!frame_done) continue;
      conn.at_frame_start = true;
      if (!conn.scheduled_us.empty()) {
        uint64_t scheduled = conn.scheduled_us.front();
        conn.scheduled_us.pop_front();
        --outstanding_;
        if (conn.frame_is_err) {
          ++stats->err_replies;
        } else {
          ++stats->completed;
          stats->latencies_us.push_back(NowUs() - scheduled);
        }
      }
    }
    if (conn.line_start > 65536) {
      conn.inbuf.erase(0, conn.line_start);
      conn.scan -= conn.line_start;
      conn.line_start = 0;
    }
  }

  void OnReadable(uint32_t index, ClientStats* stats) {
    ClientConn& conn = conns_[index];
    char chunk[16384];
    while (true) {
      ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.inbuf.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      ParseReplies(index, stats);  // salvage replies that arrived with EOF
      Kill(index, stats);
      return;
    }
    ParseReplies(index, stats);
  }

  // The measured phase. Global send k (k = 0 .. total_sends-1) is due at
  // start + k/rate and goes to socket k mod sockets; replies complete in
  // FIFO order per connection, so each outstanding request is one entry
  // in the connection's scheduled-time queue.
  void Drive(ClientStats* stats) {
    const uint64_t interval_us = 1000 * 1000 / rate_;
    const uint64_t start_us = NowUs();
    const uint64_t grace_us = 5 * 1000 * 1000;
    uint64_t k = 0;
    std::vector<epoll_event> events(1024);
    stats->latencies_us.reserve(total_sends_);
    while (true) {
      uint64_t now = NowUs();
      // Launch everything due. Sends never block: bytes queue on the
      // connection's outbuf and the scheduled time is already recorded.
      while (k < total_sends_ && now >= start_us + k * interval_us) {
        uint32_t index = static_cast<uint32_t>(k % sockets_);
        uint64_t scheduled = start_us + k * interval_us;
        ++k;
        ClientConn& conn = conns_[index];
        if (conn.dead || !conn.connected) {
          ++stats->missed;
          continue;
        }
        conn.outbuf += requests_[k % 4];
        conn.scheduled_us.push_back(scheduled);
        ++outstanding_;
        ++stats->sent;
        FlushWrites(index, stats);
      }
      if (k == total_sends_ && outstanding_ == 0) break;
      if (k == total_sends_ &&
          now > start_us + total_sends_ * interval_us + grace_us) {
        stats->unanswered += outstanding_;
        outstanding_ = 0;
        break;
      }
      int timeout_ms = 10;
      if (k < total_sends_) {
        uint64_t due = start_us + k * interval_us;
        timeout_ms = due > now
                         ? static_cast<int>(
                               std::min<uint64_t>((due - now) / 1000, 10))
                         : 0;
      }
      int n = ::epoll_wait(epoll_fd_, events.data(),
                           static_cast<int>(events.size()), timeout_ms);
      for (int i = 0; i < n; ++i) {
        uint32_t index = static_cast<uint32_t>(events[i].data.u64);
        ClientConn& conn = conns_[index];
        if (conn.dead) continue;
        if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
          OnReadable(index, stats);
        }
        if (conn.dead) continue;
        if ((events[i].events & EPOLLOUT) != 0) FlushWrites(index, stats);
      }
    }
  }

  const uint16_t port_;
  const uint32_t sockets_;
  const uint64_t rate_;
  const uint64_t total_sends_;
  const std::string session_;
  std::string requests_[4];
  int epoll_fd_ = -1;
  std::vector<ClientConn> conns_;
  uint64_t outstanding_ = 0;
};

int RunClientMode(uint16_t port, uint32_t sockets, uint64_t rate,
                  uint64_t duration_s, const std::string& session,
                  const std::string& out_path) {
  RaiseFdLimit();
  ClientStats stats;
  OpenLoopClient client(port, sockets, rate, duration_s, session);
  if (int rc = client.Run(&stats); rc != 0) return rc;

  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::perror(out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "connected %llu\nconnect_failures %llu\ndropped_conns %llu\n"
               "sent %llu\ncompleted %llu\nerr_replies %llu\nmissed %llu\n"
               "unanswered %llu\np50_us %llu\np99_us %llu\np999_us %llu\n"
               "max_us %llu\n",
               static_cast<unsigned long long>(stats.connected),
               static_cast<unsigned long long>(stats.connect_failures),
               static_cast<unsigned long long>(stats.dropped_conns),
               static_cast<unsigned long long>(stats.sent),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.err_replies),
               static_cast<unsigned long long>(stats.missed),
               static_cast<unsigned long long>(stats.unanswered),
               static_cast<unsigned long long>(
                   Percentile(stats.latencies_us, 0.50)),
               static_cast<unsigned long long>(
                   Percentile(stats.latencies_us, 0.99)),
               static_cast<unsigned long long>(
                   Percentile(stats.latencies_us, 0.999)),
               static_cast<unsigned long long>(
                   stats.latencies_us.empty() ? 0
                                              : stats.latencies_us.back()));
  std::fclose(out);
  return 0;
}

// ---------------------------------------------------------------------------
// Parent half: server in-process, client re-exec'd, results aggregated.

struct TransportResult {
  std::string transport;
  bool ran = false;
  std::map<std::string, uint64_t> client;  // the child's key/value report
  uint64_t accepted = 0;
  uint64_t thread_refused = 0;
  uint64_t overflow_refused = 0;
  uint64_t backpressure_shed = 0;
};

std::unique_ptr<Transport> MakeTransport(const std::string& name,
                                         OocqService* service,
                                         uint64_t io_threads) {
  if (name == "thread") {
    return std::make_unique<TcpServer>(service, TcpServerOptions{});
  }
  EventServerOptions options;
  options.dispatch_threads = static_cast<uint32_t>(io_threads);
  return std::make_unique<EventServer>(service, options);
}

int RunTransport(const std::string& name, const char* self, uint32_t sockets,
                 uint64_t rate, uint64_t duration_s, uint64_t io_threads,
                 TransportResult* result) {
  result->transport = name;
  ServiceOptions service_options;
  service_options.max_in_flight = 4;
  service_options.max_queue_depth = 256;
  OocqService service(service_options);
  StatusOr<std::string> sid = service.CreateSession(kSchema);
  if (!sid.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", sid.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Transport> server =
      MakeTransport(name, &service, io_threads);
  if (Status started = server->Start(); !started.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", started.ToString().c_str());
    return 1;
  }

  std::string out_path = "/tmp/oocq_bench_load." +
                         std::to_string(::getpid()) + "." + name;
  std::string port_flag = "--port=" + std::to_string(server->port());
  std::string sockets_flag = "--sockets=" + std::to_string(sockets);
  std::string rate_flag = "--rate=" + std::to_string(rate);
  std::string duration_flag = "--duration_s=" + std::to_string(duration_s);
  std::string session_flag = "--session=" + *sid;
  std::string out_flag = "--out=" + out_path;
  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    ::execl(self, "bench_load", "--client_mode", port_flag.c_str(),
            sockets_flag.c_str(), rate_flag.c_str(), duration_flag.c_str(),
            session_flag.c_str(), out_flag.c_str(),
            static_cast<char*>(nullptr));
    std::perror("execl");
    ::_exit(127);
  }
  int wait_status = 0;
  ::waitpid(pid, &wait_status, 0);
  server->Stop();
  if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
    std::fprintf(stderr, "FAIL: client child exited abnormally (%s)\n",
                 name.c_str());
    return 1;
  }

  std::ifstream in(out_path);
  std::string key;
  uint64_t value = 0;
  while (in >> key >> value) result->client[key] = value;
  ::unlink(out_path.c_str());
  if (result->client.find("p99_us") == result->client.end()) {
    std::fprintf(stderr, "FAIL: client report unreadable (%s)\n", name.c_str());
    return 1;
  }
  result->accepted = server->connections_accepted();
  const auto& metrics = service.metrics();
  result->thread_refused = metrics.CounterValue("server/thread_refused");
  result->overflow_refused = metrics.CounterValue("server/overflow_refused");
  result->backpressure_shed = metrics.CounterValue("server/backpressure_shed");
  result->ran = true;
  std::printf(
      "%-6s  connected=%llu/%u  completed=%llu/%llu  p50=%llu us  "
      "p99=%llu us  p999=%llu us  dropped=%llu  unanswered=%llu  "
      "refused(thread)=%llu\n",
      name.c_str(), static_cast<unsigned long long>(result->client["connected"]),
      sockets, static_cast<unsigned long long>(result->client["completed"]),
      static_cast<unsigned long long>(result->client["sent"]),
      static_cast<unsigned long long>(result->client["p50_us"]),
      static_cast<unsigned long long>(result->client["p99_us"]),
      static_cast<unsigned long long>(result->client["p999_us"]),
      static_cast<unsigned long long>(result->client["dropped_conns"]),
      static_cast<unsigned long long>(result->client["unanswered"]),
      static_cast<unsigned long long>(result->thread_refused));
  return 0;
}

void WriteTransportJson(std::FILE* out, const TransportResult& result,
                        bool last) {
  auto get = [&](const char* key) -> unsigned long long {
    auto it = result.client.find(key);
    return it == result.client.end() ? 0 : it->second;
  };
  std::fprintf(
      out,
      "    {\"transport\": \"%s\", \"connected\": %llu, "
      "\"connect_failures\": %llu, \"dropped_conns\": %llu, "
      "\"sent\": %llu, \"completed\": %llu, \"err_replies\": %llu, "
      "\"missed\": %llu, \"unanswered\": %llu, \"p50_us\": %llu, "
      "\"p99_us\": %llu, \"p999_us\": %llu, \"max_us\": %llu, "
      "\"accepted\": %llu, \"thread_refused\": %llu, "
      "\"overflow_refused\": %llu, \"backpressure_shed\": %llu}%s\n",
      result.transport.c_str(), get("connected"), get("connect_failures"),
      get("dropped_conns"), get("sent"), get("completed"), get("err_replies"),
      get("missed"), get("unanswered"), get("p50_us"), get("p99_us"),
      get("p999_us"), get("max_us"),
      static_cast<unsigned long long>(result.accepted),
      static_cast<unsigned long long>(result.thread_refused),
      static_cast<unsigned long long>(result.overflow_refused),
      static_cast<unsigned long long>(result.backpressure_shed),
      last ? "" : ",");
}

int Run(int argc, char** argv) {
  examples::FlagSet flags(
      "bench_load", "",
      "Open-loop load generator for the two server transports; writes\n"
      "BENCH_load.json and exits non-zero when the event transport\n"
      "misses the SLO.");
  uint64_t sockets = 10000;
  uint64_t rate = 2000;
  uint64_t duration_s = 10;
  uint64_t io_threads = 4;
  uint64_t slo_p99_ms = 250;
  std::string transports = "event,thread";
  bool client_mode = false;
  uint64_t port = 0;
  std::string session;
  std::string out_path;
  flags.Uint("sockets", &sockets, "N", "concurrent connections (default 10000)");
  flags.Uint("rate", &rate, "N", "aggregate requests/sec (default 2000)");
  flags.Uint("duration_s", &duration_s, "N", "measured seconds (default 10)");
  flags.Uint("io_threads", &io_threads, "N",
             "event-server dispatch threads (default 4)");
  flags.Uint("slo_p99_ms", &slo_p99_ms, "N",
             "p99 budget for the event transport (default 250)");
  flags.Str("transports", &transports, "LIST",
            "comma list of event,thread (default both)");
  flags.Bool("client_mode", &client_mode,
             "internal: run the re-exec'd client half");
  flags.Uint("port", &port, "N", "internal: server port (client mode)");
  flags.Str("session", &session, "ID", "internal: session id (client mode)");
  flags.Str("out", &out_path, "PATH", "internal: result file (client mode)");
  if (flags.Parse(argc, argv) != argc || sockets == 0 || rate == 0 ||
      duration_s == 0) {
    return flags.UsageError();
  }

  if (client_mode) {
    return RunClientMode(static_cast<uint16_t>(port),
                         static_cast<uint32_t>(sockets), rate, duration_s,
                         session, out_path);
  }

  RaiseFdLimit();
  std::vector<TransportResult> results;
  std::stringstream names(transports);
  std::string name;
  while (std::getline(names, name, ',')) {
    if (name != "event" && name != "thread") {
      std::fprintf(stderr, "error: unknown transport '%s'\n", name.c_str());
      return flags.UsageError();
    }
    TransportResult result;
    std::printf("%s: %llu sockets, %llu req/s for %llu s...\n", name.c_str(),
                static_cast<unsigned long long>(sockets),
                static_cast<unsigned long long>(rate),
                static_cast<unsigned long long>(duration_s));
    if (int rc = RunTransport(name, "/proc/self/exe",
                              static_cast<uint32_t>(sockets), rate,
                              duration_s, io_threads, &result);
        rc != 0) {
      if (name == "event") return rc;
      // A thread-transport collapse at this scale is a result, not a
      // benchmark failure — record the empty row and keep going.
      std::printf("%s: did not complete (recorded as degraded)\n",
                  name.c_str());
    }
    results.push_back(std::move(result));
  }

  // The SLO gates the event transport only: every socket served, every
  // request answered, tail within budget.
  bool slo_pass = true;
  for (const TransportResult& result : results) {
    if (result.transport != "event") continue;
    slo_pass = result.ran &&
               result.client.at("connected") == sockets &&
               result.client.at("unanswered") == 0 &&
               result.client.at("dropped_conns") == 0 &&
               result.client.at("p99_us") <= slo_p99_ms * 1000;
  }

  std::FILE* out = std::fopen("BENCH_load.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_load.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"workload\": \"open-loop CONTAIN mix, %llu sockets, "
               "%llu req/s, %llu s\",\n  \"slo_p99_ms\": %llu,\n"
               "  \"slo_pass\": %s,\n  \"transports\": [\n",
               static_cast<unsigned long long>(sockets),
               static_cast<unsigned long long>(rate),
               static_cast<unsigned long long>(duration_s),
               static_cast<unsigned long long>(slo_p99_ms),
               slo_pass ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    WriteTransportJson(out, results[i], i + 1 == results.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_load.json (slo_pass=%s)\n",
              slo_pass ? "true" : "false");
  return slo_pass ? 0 : 1;
}

}  // namespace
}  // namespace oocq::bench

int main(int argc, char** argv) { return oocq::bench::Run(argc, argv); }
