// E13 — service-layer throughput and latency: a closed-loop load
// generator over the embeddable OocqService (the same layer oocq_serve
// puts on a socket). Each client thread runs a fixed number of
// containment requests against one shared session; per-request latency
// comes from Response::latency_us (admission to completion, queue wait
// included).
//
// Standalone binary (no google-benchmark): writes BENCH_server.json with
// per-client-count throughput and p50/p99 latency, and asserts the
// service properties the server relies on — every request gets a
// terminal status, deadline expiries are retryable, and a drain leaves
// no request unanswered.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/service.h"
#include "support/status.h"

namespace oocq::bench {
namespace {

using server::OocqService;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ServiceOptions;

constexpr const char* kSchema = R"(
schema Bench {
  class Vehicle { }
  class Auto under Vehicle { }
  class Trailer under Vehicle { }
  class Client { VehRented: {Vehicle}; }
  class Discount under Client { VehRented: {Auto}; }
}
)";

// A rotating mix of decisions, so the session cache absorbs repeats the
// way a real view-catalog workload would.
Request MakeRequest(const std::string& sid, int i) {
  static const char* kQueries[] = {
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
      "{ x | x in Auto }",
      "{ x | exists y (x in Auto & y in Client & x in y.VehRented) }",
      "{ x | x in Trailer }",
  };
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = kQueries[i % 4];
  request.query2 = kQueries[(i + 1) % 4];
  return request;
}

struct LoadSample {
  uint32_t clients = 0;
  double requests_per_sec = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t shed = 0;
};

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

int RunLoad(uint32_t clients, uint32_t per_client, LoadSample* sample) {
  ServiceOptions options;
  options.max_in_flight = 4;
  options.max_queue_depth = 256;
  OocqService service(options);
  StatusOr<std::string> sid = service.CreateSession(kSchema);
  if (!sid.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", sid.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<uint64_t>> latencies(clients);
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> unexpected{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (uint32_t i = 0; i < per_client; ++i) {
        Response response =
            service.Execute(MakeRequest(*sid, static_cast<int>(c + i)));
        if (response.status.ok()) {
          latencies[c].push_back(response.latency_us);
        } else if (IsRetryable(response.status.code())) {
          ++shed;  // admission overflow: retryable by contract
        } else {
          ++unexpected;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  service.Drain();
  if (unexpected.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu non-retryable errors under load\n",
                 static_cast<unsigned long long>(unexpected.load()));
    return 1;
  }

  std::vector<uint64_t> all;
  for (const std::vector<uint64_t>& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  sample->clients = clients;
  sample->requests_per_sec =
      seconds > 0 ? static_cast<double>(all.size()) / seconds : 0;
  sample->p50_us = Percentile(all, 0.50);
  sample->p99_us = Percentile(all, 0.99);
  sample->shed = shed.load();
  return 0;
}

int Run() {
  const std::vector<uint32_t> client_counts = {1, 2, 4, 8};
  constexpr uint32_t kPerClient = 200;

  std::vector<LoadSample> samples;
  for (uint32_t clients : client_counts) {
    LoadSample sample;
    if (int rc = RunLoad(clients, kPerClient, &sample); rc != 0) return rc;
    samples.push_back(sample);
    std::printf("clients=%u  %.0f req/s  p50=%llu us  p99=%llu us  shed=%llu\n",
                sample.clients, sample.requests_per_sec,
                static_cast<unsigned long long>(sample.p50_us),
                static_cast<unsigned long long>(sample.p99_us),
                static_cast<unsigned long long>(sample.shed));
  }

  std::FILE* out = std::fopen("BENCH_server.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_server.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"workload\": \"closed-loop containment mix, "
               "%u requests/client, shared session\",\n  \"samples\": [\n",
               kPerClient);
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(out,
                 "    {\"clients\": %u, \"requests_per_sec\": %.1f, "
                 "\"p50_us\": %llu, \"p99_us\": %llu, \"shed\": %llu}%s\n",
                 samples[i].clients, samples[i].requests_per_sec,
                 static_cast<unsigned long long>(samples[i].p50_us),
                 static_cast<unsigned long long>(samples[i].p99_us),
                 static_cast<unsigned long long>(samples[i].shed),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_server.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
