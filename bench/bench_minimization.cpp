// E2 — the §4 exact minimization pipeline.
//
// Series reproduced:
//  * Minimization/Example41: the paper's worked example (6 raw disjuncts
//    -> 2 satisfiable -> 2 nonredundant, 1 variable folded) as counters.
//  * Minimization/StarFolding/k: k interchangeable membership witnesses
//    fold to 1 (Thm 4.3 self-mapping fixpoint) — cost vs k.
//  * Minimization/RedundantUnion/k: redundancy removal over a union of k
//    pairwise-comparable disjuncts (quadratic containment tests).
//  * Minimization/HierarchyPruning/f: expansion + unsatisfiability
//    pruning as the hierarchy fan-out grows, Example 1.2-style.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/minimization.h"
#include "parser/parser.h"
#include "schema/schema_builder.h"

namespace oocq {
namespace {

void BM_MinimizationExample41(benchmark::State& state) {
  Schema schema = bench::Must(ParseSchema(R"(
schema Partition {
  class G { }
  class H under G { }
  class I under G { }
  class N1 { A: {G}; }
  class T1 under N1 { }
  class T2 under N1 { B: G; }
  class T3 under N1 { B: G; A: {I}; }
})"));
  ConjunctiveQuery query = bench::Must(ParseQuery(
      schema,
      "{ x | exists y exists s (x in N1 & y in G & s in H & y = x.B & "
      "y in x.A & s in x.A) }"));
  MinimizationReport report;
  for (auto _ : state) {
    report = bench::Must(MinimizePositiveQuery(schema, query));
    benchmark::DoNotOptimize(report);
  }
  state.counters["raw"] = static_cast<double>(report.raw_disjuncts);
  state.counters["satisfiable"] =
      static_cast<double>(report.satisfiable_disjuncts);
  state.counters["nonredundant"] =
      static_cast<double>(report.nonredundant_disjuncts);
  state.counters["vars_removed"] =
      static_cast<double>(report.variables_removed);
}
BENCHMARK(BM_MinimizationExample41);

void BM_MinimizationStarFolding(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery query = bench::MakeStarQuery(schema, k);
  uint64_t removed = 0;
  ConjunctiveQuery minimal;
  for (auto _ : state) {
    removed = 0;
    minimal = bench::Must(MinimizeTerminalPositive(schema, query, {}, &removed));
    benchmark::DoNotOptimize(minimal);
  }
  state.counters["vars_before"] = k + 1;
  state.counters["vars_after"] = static_cast<double>(minimal.num_vars());
  state.counters["vars_removed"] = static_cast<double>(removed);
}
BENCHMARK(BM_MinimizationStarFolding)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_MinimizationRedundantUnion(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Schema schema = bench::MakeChainSchema();
  // Chains of length 1..k: a length-(i+1) path is also a length-i path,
  // so chain-(i+1) ⊆ chain-i and the nonredundant union collapses to the
  // single weakest disjunct chain-1 after O(k^2) containment tests.
  UnionQuery chains;
  for (int i = 1; i <= k; ++i) {
    chains.disjuncts.push_back(bench::MakeChainQuery(schema, i));
  }
  UnionQuery result;
  for (auto _ : state) {
    result = bench::Must(RemoveRedundantDisjuncts(schema, chains));
    benchmark::DoNotOptimize(result);
  }
  state.counters["disjuncts_in"] = k;
  state.counters["disjuncts_out"] =
      static_cast<double>(result.disjuncts.size());
}
BENCHMARK(BM_MinimizationRedundantUnion)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_MinimizationHierarchyPruning(benchmark::State& state) {
  // Root with f terminal subclasses; only subclasses with the attribute
  // survive the Example 1.2-style pruning (half carry it).
  const int f = static_cast<int>(state.range(0));
  SchemaBuilder builder;
  builder.AddClass("D");
  builder.AddClass("Root");
  for (int i = 0; i < f; ++i) {
    std::string name = "T" + std::to_string(i);
    builder.AddClass(name, {"Root"});
    if (i % 2 == 0) {
      builder.AddAttribute(name, "A", TypeName::Class("D"));
    }
  }
  Schema schema = bench::Must(builder.Build());
  ClassId root = *schema.FindClass("Root");
  ClassId d = *schema.FindClass("D");
  ConjunctiveQuery query;
  VarId x = query.AddVariable("x");
  VarId u = query.AddVariable("u");
  query.AddAtom(Atom::Range(x, {root}));
  query.AddAtom(Atom::Range(u, {d}));
  query.AddAtom(Atom::Equality(Term::Var(u), Term::Attr(x, "A")));

  MinimizationReport report;
  for (auto _ : state) {
    report = bench::Must(MinimizePositiveQuery(schema, query));
    benchmark::DoNotOptimize(report);
  }
  state.counters["raw"] = static_cast<double>(report.raw_disjuncts);
  state.counters["satisfiable"] =
      static_cast<double>(report.satisfiable_disjuncts);
}
BENCHMARK(BM_MinimizationHierarchyPruning)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
