// E1/E8 — Prop 2.1 terminal expansion.
//
// Series reproduced:
//  * Expansion/VehicleRental: Ex 2.1 — 3 raw disjuncts, 1 satisfiable
//    (the paper's Ex 1.1 conclusion), as counters.
//  * Expansion/Fanout/{F,V}: disjunct count = F^V and the time to
//    enumerate + satisfiability-check them (the cost of the first
//    minimization stage as hierarchies widen).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/expansion.h"
#include "parser/parser.h"

namespace oocq {
namespace {

void BM_ExpansionVehicleRental(benchmark::State& state) {
  Schema schema = bench::MakeVehicleRentalSchema();
  ConjunctiveQuery query = bench::Must(ParseQuery(
      schema,
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }"));
  ExpansionStats stats;
  for (auto _ : state) {
    UnionQuery expansion =
        bench::Must(ExpandToTerminalQueries(schema, query, {}, &stats));
    benchmark::DoNotOptimize(expansion);
  }
  state.counters["raw_disjuncts"] = static_cast<double>(stats.raw_disjuncts);
  state.counters["satisfiable"] =
      static_cast<double>(stats.satisfiable_disjuncts);
}
BENCHMARK(BM_ExpansionVehicleRental);

void BM_ExpansionFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int vars = static_cast<int>(state.range(1));
  Schema schema = bench::MakeFanoutSchema(fanout);
  ConjunctiveQuery query = bench::MakeFanoutQuery(schema, vars);
  ExpansionStats stats;
  for (auto _ : state) {
    UnionQuery expansion =
        bench::Must(ExpandToTerminalQueries(schema, query, {}, &stats));
    benchmark::DoNotOptimize(expansion);
  }
  state.counters["raw_disjuncts"] = static_cast<double>(stats.raw_disjuncts);
  state.counters["satisfiable"] =
      static_cast<double>(stats.satisfiable_disjuncts);
}
BENCHMARK(BM_ExpansionFanout)
    ->ArgNames({"fanout", "vars"})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 6})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({16, 2})
    ->Args({16, 3});

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
