// Ablation benches for the design choices DESIGN.md §5.4 calls out:
//
//  * FastPathVsFullTheorem/k: the Cor 3.4 single-mapping fast path vs the
//    forced full Thm 3.1 enumeration on positive workloads. The outcome
//    is identical; the counters show the augmentation × subset work the
//    dispatch avoids.
//  * DedupedVsRawCandidates/k: the (element-class, set-term-class)
//    deduplication of T. We approximate "raw" by the candidate count
//    before dedup: with k equated aliases of one element variable, raw T
//    would be k atoms (2^k subsets); deduped T stays at 1.
//  * NormalizationOff/k: containment where the cross-class inequality
//    pruning in NormalizeTerminalQuery is what moves Q2 from the Cor 3.3
//    path to the Cor 3.4 path — measured as with/without an extra
//    same-class inequality that blocks the pruning.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/containment.h"

namespace oocq {
namespace {

/// Positive workload: star queries with k witnesses, both directions.
void BM_AblationFastPath(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool force_full = state.range(1) != 0;
  Schema schema = bench::MakeChainSchema();
  ConjunctiveQuery big = bench::MakeStarQuery(schema, k);
  ConjunctiveQuery small = bench::MakeStarQuery(schema, 1);
  ContainmentOptions options;
  options.force_full_theorem = force_full;
  options.max_augmentations = 10'000'000;
  ContainmentStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained = bench::Must(Contained(schema, small, big, options, &stats));
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["augmentations"] = static_cast<double>(stats.augmentations);
  state.counters["subset_checks"] =
      static_cast<double>(stats.membership_subsets);
}
BENCHMARK(BM_AblationFastPath)
    ->ArgNames({"k", "full"})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({6, 0})
    ->Args({6, 1});

/// The same containment instance decided through Cor 3.4 (after the
/// cross-class inequality is pruned by normalization) vs through Cor 3.3
/// (a same-class inequality blocks pruning). Shows why normalization
/// §2.5-style matters for dispatch.
void BM_AblationNormalizationDispatch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool same_class = state.range(1) != 0;
  Schema schema = bench::MakeFanoutSchema(2);
  ClassId r0 = *schema.FindClass("R0");
  ClassId r1 = *schema.FindClass("R1");

  // Q1: k variables over R0 (plus one over R1), Q2 adds an inequality
  // that is cross-class (pruned -> Cor 3.4) or same-class (kept ->
  // Cor 3.3 augmentation sweep over the k R0-variables).
  ConjunctiveQuery q1;
  for (int i = 0; i < k; ++i) {
    VarId v = q1.AddVariable("x" + std::to_string(i));
    q1.AddAtom(Atom::Range(v, {r0}));
  }
  VarId other1 = q1.AddVariable("w");
  q1.AddAtom(Atom::Range(other1, {r1}));
  q1.AddAtom(Atom::Inequality(Term::Var(0), Term::Var(1)));

  ConjunctiveQuery q2;
  VarId a = q2.AddVariable("a");
  VarId b = q2.AddVariable("b");
  q2.AddAtom(Atom::Range(a, {r0}));
  if (same_class) {
    q2.AddAtom(Atom::Range(b, {r0}));
  } else {
    q2.AddAtom(Atom::Range(b, {r1}));
  }
  q2.AddAtom(Atom::Inequality(Term::Var(a), Term::Var(b)));

  ContainmentOptions options;
  options.max_augmentations = 10'000'000;
  ContainmentStats stats;
  bool contained = false;
  for (auto _ : state) {
    stats = ContainmentStats();
    contained = bench::Must(Contained(schema, q1, q2, options, &stats));
    benchmark::DoNotOptimize(contained);
  }
  state.counters["contained"] = contained ? 1 : 0;
  state.counters["augmentations"] = static_cast<double>(stats.augmentations);
}
BENCHMARK(BM_AblationNormalizationDispatch)
    ->ArgNames({"k", "same_class"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({6, 0})
    ->Args({6, 1})
    ->Args({8, 0})
    ->Args({8, 1});

}  // namespace
}  // namespace oocq

BENCHMARK_MAIN();
