#!/usr/bin/env python3
"""Run every bench_* binary and merge their BENCH_*.json into one report.

The repo's benchmarks come in two shapes: google-benchmark binaries
(bench_containment_*, bench_minimization, ...) that emit JSON via
--benchmark_out, and standalone harnesses (bench_server, bench_persist,
bench_observability, ...) that write a BENCH_<name>.json into their
working directory. This driver runs both shapes uniformly, collects
every result file, and writes a single merged report:

    {"generated_by": "bench/run_all.py", "results": {<bench>: <json>}}

Usage (from the repo root, after a build):

    python3 bench/run_all.py --build-dir build --out BENCH_ALL.json
    python3 bench/run_all.py --only bench_server,bench_persist

The merged report is what bench/compare_baseline.py consumes; see
docs/observability.md#bench-baseline. Stdlib only — no pip installs.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Benches built against google-benchmark (bench/CMakeLists.txt's
# OOCQ_BENCHES list): they need --benchmark_out to produce JSON.
GBENCH = {
    "bench_expansion",
    "bench_satisfiability",
    "bench_containment_positive",
    "bench_containment_general",
    "bench_minimization",
    "bench_evaluation",
    "bench_ablation",
    "bench_workload",
}


def find_benches(bench_dir):
    benches = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if name.startswith("bench_") and os.access(path, os.X_OK) and \
                os.path.isfile(path):
            benches.append(name)
    return benches


def run_one(bench_dir, name, workdir, timeout_s):
    """Runs one bench in `workdir`; returns (ok, parsed-json-or-None)."""
    binary = os.path.join(bench_dir, name)
    out_json = os.path.join(workdir, f"BENCH_{name}.json")
    cmd = [binary]
    if name in GBENCH:
        cmd += [f"--benchmark_out={out_json}", "--benchmark_out_format=json"]
    try:
        proc = subprocess.run(cmd, cwd=workdir, timeout=timeout_s,
                              stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    except subprocess.TimeoutExpired:
        print(f"TIMEOUT {name} after {timeout_s}s", file=sys.stderr)
        return False, None
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        print(f"FAIL {name}: exit {proc.returncode}", file=sys.stderr)
        return False, None
    # Standalone harnesses name their own output file (BENCH_server.json,
    # not BENCH_bench_server.json); pick up whichever appeared.
    candidates = [out_json,
                  os.path.join(workdir,
                               f"BENCH_{name.removeprefix('bench_')}.json")]
    for candidate in candidates:
        if os.path.exists(candidate):
            with open(candidate) as f:
                try:
                    return True, json.load(f)
                except json.JSONDecodeError as e:
                    print(f"FAIL {name}: bad JSON in {candidate}: {e}",
                          file=sys.stderr)
                    return False, None
    print(f"note: {name} produced no JSON result (kept: pass/fail only)")
    return True, None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--out", default="BENCH_ALL.json",
                        help="merged report path (default: BENCH_ALL.json)")
    parser.add_argument("--only", default="",
                        help="comma-separated bench names to run (default all)")
    parser.add_argument("--skip", default="",
                        help="comma-separated bench names to skip")
    parser.add_argument("--timeout-s", type=int, default=600,
                        help="per-bench timeout in seconds (default 600)")
    args = parser.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        print(f"error: {bench_dir} is not a directory (build first)",
              file=sys.stderr)
        return 2

    benches = find_benches(bench_dir)
    only = {b for b in args.only.split(",") if b}
    skip = {b for b in args.skip.split(",") if b}
    unknown = (only | skip) - set(benches)
    if unknown:
        print(f"error: unknown bench(es): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    if only:
        benches = [b for b in benches if b in only]
    benches = [b for b in benches if b not in skip]
    if skip:
        # Coverage must never narrow silently: name what was left out.
        print(f"skipping: {', '.join(sorted(skip))}")

    bench_dir = os.path.abspath(bench_dir)
    results = {}
    failed = []
    for name in benches:
        print(f"running {name} ...", flush=True)
        with tempfile.TemporaryDirectory(prefix=f"{name}.") as workdir:
            ok, parsed = run_one(bench_dir, name, workdir, args.timeout_s)
        if not ok:
            failed.append(name)
            continue
        if parsed is not None:
            results[name] = parsed

    report = {"generated_by": "bench/run_all.py", "results": results}
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}: {len(results)} result(s), "
          f"{len(failed)} failure(s)")
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
