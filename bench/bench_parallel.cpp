// Thread-scaling benchmark for the parallel engine core: one redundancy-
// heavy union (chains of length 1..k — every shorter chain contains every
// longer one, so the containment matrix is dense) pushed through
// RemoveRedundantDisjuncts and MinimizePositiveUnion at 1/2/4/8 threads.
//
// Standalone binary (no google-benchmark): it cross-checks that every
// thread count produces the byte-identical union, then writes
// BENCH_parallel.json with per-thread-count timings and speedups.
// Speedups require real cores — on a single-core container every
// configuration degenerates to the serial path.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine_options.h"
#include "core/minimization.h"
#include "query/printer.h"
#include "support/cancellation.h"

namespace oocq::bench {
namespace {

struct Sample {
  uint32_t threads = 1;
  double millis = 0;
  double speedup = 1;
};

UnionQuery MakeRedundantUnion(const Schema& schema, int max_len,
                              int copies_per_len) {
  // Chains of every length 1..max_len, each `copies_per_len` times with
  // distinct variable names: C_{j} ⊆ C_{i} for i ≤ j, so redundancy
  // removal keeps exactly the shortest chain and the matrix is dense.
  UnionQuery u;
  for (int len = 1; len <= max_len; ++len) {
    for (int copy = 0; copy < copies_per_len; ++copy) {
      u.disjuncts.push_back(MakeChainQuery(schema, len));
    }
  }
  return u;
}

double TimeRunMillis(const Schema& schema, const UnionQuery& input,
                     uint32_t threads, std::string* rendered) {
  EngineOptions options;
  options.parallel.num_threads = threads;
  const auto start = std::chrono::steady_clock::now();
  MinimizationReport report =
      Must(MinimizePositiveUnion(schema, input, options));
  const auto stop = std::chrono::steady_clock::now();
  *rendered = UnionQueryToString(schema, report.minimized);
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

// A tripped CancellationToken must abort the fan-out with its retryable
// status — and leave the engine reusable: the same input rerun afterwards
// with the same options must reproduce the baseline (pool workers drained
// cleanly, no half-cancelled state leaks into later runs).
int CheckCancelledTeardown(const Schema& schema, const UnionQuery& input,
                           const std::string& baseline_rendered) {
  EngineOptions options;
  options.parallel.num_threads = 4;
  CancellationToken cancelled;
  cancelled.Cancel();
  options.containment.cancel = &cancelled;
  StatusOr<MinimizationReport> aborted =
      MinimizePositiveUnion(schema, input, options);
  if (aborted.ok() || !IsRetryable(aborted.status().code())) {
    std::fprintf(stderr,
                 "FAIL: cancelled run should abort with a retryable "
                 "status, got %s\n",
                 aborted.ok() ? "OK" : aborted.status().ToString().c_str());
    return 1;
  }
  options.containment.cancel = nullptr;
  MinimizationReport rerun = Must(MinimizePositiveUnion(schema, input, options));
  if (UnionQueryToString(schema, rerun.minimized) != baseline_rendered) {
    std::fprintf(stderr,
                 "FAIL: rerun after cancellation differs from baseline\n");
    return 1;
  }
  return 0;
}

int Run() {
  const Schema schema = MakeChainSchema();
  const UnionQuery input =
      MakeRedundantUnion(schema, /*max_len=*/9, /*copies_per_len=*/2);

  const std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  constexpr int kReps = 3;

  std::string baseline_rendered;
  std::vector<Sample> samples;
  for (uint32_t threads : thread_counts) {
    double best = -1;
    std::string rendered;
    for (int rep = 0; rep < kReps; ++rep) {
      const double ms = TimeRunMillis(schema, input, threads, &rendered);
      if (best < 0 || ms < best) best = ms;
    }
    if (threads == 1) {
      baseline_rendered = rendered;
    } else if (rendered != baseline_rendered) {
      std::fprintf(stderr,
                   "FAIL: %u-thread result differs from 1-thread result\n",
                   threads);
      return 1;
    }
    Sample sample;
    sample.threads = threads;
    sample.millis = best;
    samples.push_back(sample);
  }
  for (Sample& sample : samples) {
    sample.speedup = samples.front().millis / sample.millis;
  }

  if (int rc = CheckCancelledTeardown(schema, input, baseline_rendered);
      rc != 0) {
    return rc;
  }

  std::FILE* out = std::fopen("BENCH_parallel.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_parallel.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out, "  \"workload\": \"MinimizePositiveUnion over %zu "
                    "redundant chain disjuncts\",\n  \"samples\": [\n",
               input.disjuncts.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %u, \"best_ms\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 samples[i].threads, samples[i].millis, samples[i].speedup,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  for (const Sample& sample : samples) {
    std::printf("threads=%u  best=%.3f ms  speedup=%.2fx\n", sample.threads,
                sample.millis, sample.speedup);
  }
  std::printf("results identical across thread counts; cancelled run "
              "aborted retryably and tore down cleanly; wrote "
              "BENCH_parallel.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
