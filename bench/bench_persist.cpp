// E14 — restart cost and warm-start payoff of the durable catalog
// (docs/persistence.md): the E13 containment mix runs once against a
// fresh service backed by a DurableCatalog (cold), the service is torn
// down (final snapshot), and the same mix runs against a restarted
// service over the same data dir (warm). The warm run must produce
// identical verdicts and answer mostly from the restored cache.
//
// Standalone binary (no google-benchmark): writes BENCH_persist.json
// with cold/warm p50/p99 latency and cache hit rate, plus the recovery
// record count, and asserts the restart properties the server relies
// on — same verdicts, a non-zero warm hit rate, and a populated
// snapshot on disk.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "persist/catalog.h"
#include "persist/snapshot.h"
#include "server/service.h"
#include "support/file.h"
#include "support/status.h"

namespace oocq::bench {
namespace {

using server::OocqService;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ServiceOptions;

constexpr const char* kSchema = R"(
schema Bench {
  class Vehicle { }
  class Auto under Vehicle { }
  class Trailer under Vehicle { }
  class Client { VehRented: {Vehicle}; }
  class Discount under Client { VehRented: {Auto}; }
}
)";

// The E13 rotating decision mix (bench_server.cpp): four queries paired
// cyclically, so a session cache converges onto a small working set.
Request MakeRequest(const std::string& sid, int i) {
  static const char* kQueries[] = {
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }",
      "{ x | x in Auto }",
      "{ x | exists y (x in Auto & y in Client & x in y.VehRented) }",
      "{ x | x in Trailer }",
  };
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = kQueries[i % 4];
  request.query2 = kQueries[(i + 1) % 4];
  return request;
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

struct PhaseSample {
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  double hit_rate = 0;
  size_t requests = 0;
  std::vector<bool> verdicts;
};

/// Runs the mix single-client (closed loop) and reads the hit rate off
/// the service registry — the same counters the METRICS verb snapshots.
int RunPhase(OocqService* service, const std::string& sid, uint32_t requests,
             PhaseSample* sample) {
  std::vector<uint64_t> latencies;
  latencies.reserve(requests);
  for (uint32_t i = 0; i < requests; ++i) {
    Response response = service->Execute(MakeRequest(sid, static_cast<int>(i)));
    if (!response.status.ok()) {
      std::fprintf(stderr, "FAIL: request %u: %s\n", i,
                   response.status.ToString().c_str());
      return 1;
    }
    latencies.push_back(response.latency_us);
    sample->verdicts.push_back(response.verdict);
  }
  std::sort(latencies.begin(), latencies.end());
  sample->p50_us = Percentile(latencies, 0.50);
  sample->p99_us = Percentile(latencies, 0.99);
  sample->requests = latencies.size();
  const uint64_t hits = service->metrics().CounterValue("cache/hit");
  const uint64_t misses = service->metrics().CounterValue("cache/miss");
  sample->hit_rate = hits + misses > 0
                         ? static_cast<double>(hits) /
                               static_cast<double>(hits + misses)
                         : 0;
  return 0;
}

int Run() {
  constexpr uint32_t kRequests = 400;
  const std::string dir = "bench_persist_data";
  if (StatusOr<std::vector<std::string>> names = ListDir(dir); names.ok()) {
    for (const std::string& file : *names) {
      (void)RemoveFileIfExists(dir + "/" + file);
    }
  }

  persist::DurableCatalogOptions catalog_options;
  catalog_options.data_dir = dir;
  catalog_options.snapshot_interval_s = 0;  // snapshot on shutdown only

  std::string sid;
  PhaseSample cold;
  {
    StatusOr<std::unique_ptr<persist::DurableCatalog>> catalog =
        persist::DurableCatalog::Open(catalog_options);
    if (!catalog.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", catalog.status().ToString().c_str());
      return 1;
    }
    ServiceOptions options;
    options.catalog = *std::move(catalog);
    OocqService service(options);
    StatusOr<std::string> created = service.CreateSession(kSchema);
    if (!created.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", created.status().ToString().c_str());
      return 1;
    }
    sid = *created;
    if (int rc = RunPhase(&service, sid, kRequests, &cold); rc != 0) return rc;
    // Destructor: drain + final snapshot with the warm cache inside.
  }
  if (persist::LatestSnapshotSeq(dir) == 0) {
    std::fprintf(stderr, "FAIL: shutdown left no snapshot in %s\n",
                 dir.c_str());
    return 1;
  }

  PhaseSample warm;
  uint64_t recovered_records = 0;
  {
    StatusOr<std::unique_ptr<persist::DurableCatalog>> catalog =
        persist::DurableCatalog::Open(catalog_options);
    if (!catalog.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", catalog.status().ToString().c_str());
      return 1;
    }
    recovered_records = (*catalog)->recovered().size();
    ServiceOptions options;
    options.catalog = *std::move(catalog);
    OocqService service(options);
    if (service.session_count() != 1) {
      std::fprintf(stderr, "FAIL: restart restored %zu sessions, want 1\n",
                   service.session_count());
      return 1;
    }
    if (int rc = RunPhase(&service, sid, kRequests, &warm); rc != 0) return rc;
  }

  if (warm.verdicts != cold.verdicts) {
    std::fprintf(stderr, "FAIL: warm verdicts differ from cold\n");
    return 1;
  }
  if (warm.hit_rate <= cold.hit_rate || warm.hit_rate == 0) {
    std::fprintf(stderr,
                 "FAIL: warm hit rate %.3f not above cold %.3f — the "
                 "restored cache did not serve the first pass\n",
                 warm.hit_rate, cold.hit_rate);
    return 1;
  }

  std::printf("cold  p50=%llu us  p99=%llu us  hit_rate=%.3f\n",
              static_cast<unsigned long long>(cold.p50_us),
              static_cast<unsigned long long>(cold.p99_us), cold.hit_rate);
  std::printf("warm  p50=%llu us  p99=%llu us  hit_rate=%.3f  "
              "(recovered %llu records)\n",
              static_cast<unsigned long long>(warm.p50_us),
              static_cast<unsigned long long>(warm.p99_us), warm.hit_rate,
              static_cast<unsigned long long>(recovered_records));

  std::FILE* out = std::fopen("BENCH_persist.json", "w");
  if (out == nullptr) {
    std::perror("BENCH_persist.json");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out,
               "  \"workload\": \"E13 containment mix, %u requests, "
               "restart between runs\",\n",
               kRequests);
  std::fprintf(out,
               "  \"cold\": {\"p50_us\": %llu, \"p99_us\": %llu, "
               "\"hit_rate\": %.3f},\n",
               static_cast<unsigned long long>(cold.p50_us),
               static_cast<unsigned long long>(cold.p99_us), cold.hit_rate);
  std::fprintf(out,
               "  \"warm\": {\"p50_us\": %llu, \"p99_us\": %llu, "
               "\"hit_rate\": %.3f},\n",
               static_cast<unsigned long long>(warm.p50_us),
               static_cast<unsigned long long>(warm.p99_us), warm.hit_rate);
  std::fprintf(out, "  \"recovered_records\": %llu\n}\n",
               static_cast<unsigned long long>(recovered_records));
  std::fclose(out);
  std::printf("wrote BENCH_persist.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
