#!/usr/bin/env python3
"""Gate a merged bench report against the checked-in BASELINE.json.

Reads the BENCH_ALL.json produced by bench/run_all.py, extracts every
latency metric it knows how to compare — p50-style fields from the
standalone harnesses (bench_server, bench_persist, ...) and per-case
real_time from google-benchmark binaries (bench_containment_*, ...) —
and fails (exit 1) when any metric present in the baseline regressed by
more than the budget (default 10%, --budget to relax; CI uses a looser
budget because shared runners are noisy — see .github/workflows/ci.yml).

Metrics in the report but not in the baseline are listed, not gated, so
adding a bench never breaks the gate until its baseline is recorded.
Metrics in the baseline but missing from the report fail the gate: a
bench silently vanishing is itself a regression.

    python3 bench/compare_baseline.py BENCH_ALL.json
    python3 bench/compare_baseline.py BENCH_ALL.json --budget 0.5
    python3 bench/compare_baseline.py BENCH_ALL.json --update  # rewrite
    python3 bench/compare_baseline.py --self-test              # negative test

--self-test runs the comparator against synthetic reports: one with an
injected 15% p50 regression (must be caught) and one within budget (must
pass). It is wired as a ctest so the gate's own failure path stays
exercised. Stdlib only — no pip installs.
"""

import argparse
import copy
import json
import os
import sys

DEFAULT_BUDGET = 0.10
BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "BASELINE.json")


def extract_metrics(report):
    """Flattens a merged report into {metric_name: value}.

    Covered shapes:
      - any dict field whose key ends in "p50_us" (bench_server samples,
        bench_persist cold/warm, ...) under its JSON path;
      - google-benchmark entries: benchmarks[].real_time keyed by name.
    """
    metrics = {}

    def walk(bench, node, path):
        if isinstance(node, dict):
            if "benchmarks" in node and isinstance(node["benchmarks"], list):
                for case in node["benchmarks"]:
                    name = case.get("name")
                    value = case.get("real_time")
                    if name is not None and isinstance(value, (int, float)):
                        metrics[f"{bench}/{name}/real_time"] = float(value)
                return
            for key, child in node.items():
                walk(bench, child, f"{path}/{key}")
        elif isinstance(node, list):
            for i, child in enumerate(node):
                # Prefer a self-describing key (bench_server samples carry
                # their client count) over a bare index.
                label = str(i)
                if isinstance(child, dict) and "clients" in child:
                    label = f"clients={child['clients']}"
                walk(bench, child, f"{path}/{label}")
        elif isinstance(node, (int, float)):
            if path.endswith("p50_us"):
                metrics[f"{bench}{path}"] = float(node)

    for bench, result in report.get("results", {}).items():
        walk(bench, result, "")
    return metrics


def compare(current, baseline, budget):
    """Returns (regressions, missing, improvements, ungated) lists."""
    regressions, missing, improvements, ungated = [], [], [], []
    for name, base in sorted(baseline.items()):
        if name not in current:
            missing.append(name)
            continue
        now = current[name]
        if base > 0 and now > base * (1.0 + budget):
            regressions.append((name, base, now, (now - base) / base))
        elif base > 0 and now < base * (1.0 - budget):
            improvements.append((name, base, now, (now - base) / base))
    for name in sorted(set(current) - set(baseline)):
        ungated.append(name)
    return regressions, missing, improvements, ungated


def run_compare(current, baseline, budget, quiet=False):
    regressions, missing, improvements, ungated = compare(
        current, baseline, budget)
    out = sys.stderr if (regressions or missing) else sys.stdout

    def say(line):
        if not quiet:
            print(line, file=out)

    for name, base, now, delta in regressions:
        say(f"REGRESSION {name}: {base:.1f} -> {now:.1f} "
            f"(+{delta * 100:.1f}% > {budget * 100:.0f}% budget)")
    for name in missing:
        say(f"MISSING {name}: in baseline but absent from the report")
    for name, base, now, delta in improvements:
        say(f"improved {name}: {base:.1f} -> {now:.1f} ({delta * 100:+.1f}%)"
            " — consider refreshing the baseline")
    if ungated:
        say(f"ungated (not in baseline): {len(ungated)} metric(s)")
    ok = not regressions and not missing
    say(f"{'PASS' if ok else 'FAIL'}: {len(baseline)} gated metric(s), "
        f"{len(regressions)} regression(s), {len(missing)} missing, "
        f"budget {budget * 100:.0f}%")
    return 0 if ok else 1


def self_test():
    """The gate's negative test: an injected 15% p50 regression must fail
    the default 10% budget; a 5% wobble must pass."""
    report = {"results": {
        "bench_server": {"samples": [
            {"clients": 1, "p50_us": 100, "p99_us": 500},
            {"clients": 4, "p50_us": 400, "p99_us": 900},
        ]},
        "bench_persist": {"cold": {"p50_us": 1000},
                          "warm": {"p50_us": 200}},
        "bench_containment_positive": {"benchmarks": [
            {"name": "BM_Chain/8", "real_time": 1234.5},
        ]},
    }}
    baseline = extract_metrics(report)
    expected = {
        "bench_server/samples/clients=1/p50_us",
        "bench_server/samples/clients=4/p50_us",
        "bench_persist/cold/p50_us",
        "bench_persist/warm/p50_us",
        "bench_containment_positive/BM_Chain/8/real_time",
    }
    if set(baseline) != expected:
        print(f"self-test FAIL: extraction mismatch: {sorted(baseline)}",
              file=sys.stderr)
        return 1

    regressed = copy.deepcopy(report)
    regressed["results"]["bench_server"]["samples"][1]["p50_us"] = 400 * 1.15
    rc = run_compare(extract_metrics(regressed), baseline, DEFAULT_BUDGET,
                     quiet=True)
    if rc == 0:
        print("self-test FAIL: 15% regression passed the 10% gate",
              file=sys.stderr)
        return 1

    wobbled = copy.deepcopy(report)
    wobbled["results"]["bench_server"]["samples"][1]["p50_us"] = 400 * 1.05
    rc = run_compare(extract_metrics(wobbled), baseline, DEFAULT_BUDGET,
                     quiet=True)
    if rc != 0:
        print("self-test FAIL: 5% wobble failed the 10% gate",
              file=sys.stderr)
        return 1

    dropped = copy.deepcopy(report)
    del dropped["results"]["bench_persist"]
    rc = run_compare(extract_metrics(dropped), baseline, DEFAULT_BUDGET,
                     quiet=True)
    if rc == 0:
        print("self-test FAIL: missing bench passed the gate",
              file=sys.stderr)
        return 1

    print("self-test PASS: gate catches regressions and missing benches")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", nargs="?",
                        help="merged report from bench/run_all.py")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help=f"baseline file (default: {BASELINE_PATH})")
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET,
                        help="allowed fractional regression (default 0.10)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the report instead "
                             "of comparing")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches an injected regression")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.report:
        parser.error("a report is required unless --self-test")

    with open(args.report) as f:
        current = extract_metrics(json.load(f))

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.baseline}: {len(current)} metric(s)")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    return run_compare(current, baseline, args.budget)


if __name__ == "__main__":
    sys.exit(main())
