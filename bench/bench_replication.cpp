// E17 — replication lag under sustained mutation load
// (docs/replication.md): a primary service behind a real transport, a
// follower tailing it through replicate::Follower over real sockets, and
// a closed-loop mutator driving ~1k DefineQuery records per second. A
// sampler thread watches both ends and stamps, per record, the moment it
// became durable on the primary (WAL synced_seq crosses it) and the
// moment the follower applied it. Lag = applied − durable.
//
// Standalone binary (no google-benchmark): writes BENCH_replication.json
// with lag p50/p99 and achieved throughput, and asserts the subsystem's
// acceptance bound — lag p50 under one group-commit window — plus
// verdict parity between primary and follower after the load.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "persist/catalog.h"
#include "persist/wal.h"
#include "replicate/follower.h"
#include "server/event_server.h"
#include "server/service.h"
#include "support/failpoint.h"
#include "support/file.h"
#include "support/status.h"

namespace oocq::bench {
namespace {

using server::EventServer;
using server::EventServerOptions;
using server::OocqService;
using server::Request;
using server::RequestKind;
using server::Response;
using server::ServiceOptions;

// One group-commit window on the primary. The mutator is closed-loop, so
// each DefineQuery rides one fsync batch and the window doubles as the
// pacing clock: a 1000us window yields the target ~1k records/s.
constexpr uint32_t kWindowUs = 1000;
constexpr uint32_t kWarmupRecords = 100;
constexpr uint32_t kRecords = 1000;

constexpr const char* kSchema = R"(
schema Bench {
  class Vehicle { }
  class Auto under Vehicle { }
  class Client { VehRented: {Vehicle}; }
  class Discount under Client { VehRented: {Auto}; }
}
)";

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FreshDir(const std::string& name) {
  StatusOr<std::vector<std::string>> names = ListDir(name);
  if (names.ok()) {
    for (const std::string& file : *names) {
      MustOk(RemoveFileIfExists(name + "/" + file));
    }
  }
  MustOk(MakeDirs(name));
  return name;
}

std::shared_ptr<persist::DurableCatalog> OpenCatalog(
    const std::string& dir, uint32_t group_commit_window_us) {
  persist::DurableCatalogOptions options;
  options.data_dir = dir;
  options.snapshot_interval_s = 0;  // no compaction mid-measurement
  options.group_commit_window_us = group_commit_window_us;
  return std::shared_ptr<persist::DurableCatalog>(
      Must(persist::DurableCatalog::Open(options)));
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

Request ContainRequest(const std::string& sid) {
  Request request;
  request.kind = RequestKind::kContained;
  request.session_id = sid;
  request.query = "{ x | exists y (x in Auto & y in Discount & x in y.VehRented) }";
  request.query2 = "{ x | x in Vehicle }";
  return request;
}

bool Eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 1000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

// ---- Failover time ----------------------------------------------------
// The outage window a client sees across an unplanned failover: a fresh
// primary + follower pair with auto-promotion armed, the primary
// black-holed via the net/partition failpoint (alive but unreachable —
// the split-brain shape, docs/replication.md#terms-and-fencing), and
// the clock runs from the partition to the *first write the promoted
// follower accepts*. That spans detection (the missed-poll backoff
// crossing auto_promote_after_ms) plus promotion itself (durable TERM
// bump, gates open). One trial = one sample.

constexpr uint32_t kFailoverTrials = 5;
constexpr uint32_t kPromoteAfterMs = 200;

StatusOr<uint64_t> FailoverTrial(uint32_t trial) {
  // Follower first: it outlives the primary in spirit (it ends the
  // trial as the writer).
  std::string follower_dir = FreshDir("bench_failover_follower");
  ServiceOptions follower_options;
  follower_options.catalog = OpenCatalog(follower_dir, 0);
  follower_options.read_only = true;
  OocqService follower_service(follower_options);

  std::string primary_dir = FreshDir("bench_failover_primary");
  ServiceOptions primary_options;
  primary_options.catalog = OpenCatalog(primary_dir, 0);
  OocqService primary(primary_options);
  EventServerOptions transport_options;
  transport_options.dispatch_threads = 2;
  EventServer transport(&primary, transport_options);
  MustOk(transport.Start());
  std::string sid = Must(primary.CreateSession(kSchema));

  replicate::FollowerOptions tail_options;
  tail_options.port = transport.port();
  tail_options.poll_wait_ms = 100;
  tail_options.backoff_ms = 20;
  tail_options.backoff_cap_ms = 50;
  tail_options.auto_promote_after_ms = kPromoteAfterMs;
  replicate::Follower follower(&follower_service, tail_options);
  follower.Start();
  if (!Eventually([&] {
        return follower.connected() &&
               follower_service.session_count() == 1 &&
               follower.lag_records() == 0;
      })) {
    return Status::Internal("failover trial: follower never synced");
  }

  // Partition, then hammer the follower with writes until one sticks.
  // The refusals before promotion are the readonly FAILED_PRECONDITION
  // a routed client would bounce off of; the first OK is the moment the
  // fleet accepts writes again.
  const std::string label = "127.0.0.1:" + std::to_string(transport.port());
  const int64_t partitioned = NowUs();
  MustOk(Failpoints::Configure("net/partition:" + label + "=error"));
  uint64_t sample = 0;
  for (uint32_t attempt = 0;; ++attempt) {
    Status written = follower_service.DefineQuery(
        sid, "f" + std::to_string(trial) + "_" + std::to_string(attempt),
        "{ x | x in Auto }");
    if (written.ok()) {
      sample = static_cast<uint64_t>(NowUs() - partitioned);
      break;
    }
    if (NowUs() - partitioned > 10'000'000) {
      Failpoints::Reset();
      return Status::Internal("failover trial: promotion never happened");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  Failpoints::Reset();  // heal before teardown dials anything
  follower.Stop();
  transport.Stop();
  return sample;
}

int Run() {
  // ---- Primary: durable catalog + service + real transport ----
  std::string primary_dir = FreshDir("bench_repl_primary");
  ServiceOptions primary_options;
  primary_options.catalog = OpenCatalog(primary_dir, kWindowUs);
  persist::WriteAheadLog* primary_wal = primary_options.catalog->wal();
  OocqService primary(primary_options);
  EventServerOptions transport_options;
  transport_options.dispatch_threads = 2;
  EventServer transport(&primary, transport_options);
  MustOk(transport.Start());

  std::string sid = Must(primary.CreateSession(kSchema));

  // ---- Follower: read-only service + tail thread ----
  // The follower's own WAL syncs immediately (window 0) so the measured
  // lag is shipping + apply, not local batching.
  std::string follower_dir = FreshDir("bench_repl_follower");
  ServiceOptions follower_options;
  follower_options.catalog = OpenCatalog(follower_dir, 0);
  follower_options.read_only = true;
  OocqService follower_service(follower_options);
  replicate::FollowerOptions tail_options;
  tail_options.port = transport.port();
  tail_options.poll_wait_ms = 500;
  replicate::Follower follower(&follower_service, tail_options);
  follower.Start();
  if (!Eventually([&] {
        return follower.connected() && follower_service.session_count() == 1;
      })) {
    std::fprintf(stderr, "FAIL: follower never synced the seed session\n");
    return 1;
  }

  // ---- Warmup: let both WALs, the stream, and the parser settle ----
  for (uint32_t i = 0; i < kWarmupRecords; ++i) {
    MustOk(primary.DefineQuery(sid, "w" + std::to_string(i),
                               i % 2 ? "{ x | x in Auto }"
                                     : "{ x | x in Vehicle }"));
  }
  if (!Eventually([&] { return follower.lag_records() == 0; })) {
    std::fprintf(stderr, "FAIL: follower never caught up after warmup\n");
    return 1;
  }

  // ---- Measurement ----
  // Lag per record = time from DefineQuery returning (the record is
  // fsync-durable on the primary at that instant) to the follower's
  // applied-record counter covering it. The probe spins on the
  // follower's atomic — sampling both ends from outside can't resolve
  // the ordering, because reading the primary's synced seq serializes
  // behind the same WAL mutex that the commit-and-ship wakeup holds.
  //
  // Two closed-loop mutators: each DefineQuery rides one group-commit
  // batch (~window + overhead per call), so a single writer tops out
  // below the 1k/s target — two batched together clear it. Pacing is on
  // the shared record index, so the aggregate rate targets one record
  // per window. The probing thread measures its own records; the other
  // thread is pure load.
  const uint64_t durable_base = primary_wal->synced_seq();
  const uint64_t applied_base = follower.applied_records();
  std::vector<uint64_t> lag;
  lag.reserve(kRecords);
  const int64_t load_start = NowUs();
  std::atomic<uint32_t> next_index{0};
  auto mutate = [&](bool probe) {
    for (;;) {
      const uint32_t i = next_index.fetch_add(1, std::memory_order_relaxed);
      if (i >= kRecords) return;
      MustOk(primary.DefineQuery(sid, "m" + std::to_string(i),
                                 i % 2 ? "{ x | x in Auto }"
                                       : "{ x | x in Vehicle }"));
      if (probe) {
        // synced_seq here covers the batch this record rode in; the
        // follower applies whole batches, so "applied >= that many
        // records since the baseline" covers this record too.
        const int64_t acked = NowUs();
        const uint64_t target = primary_wal->synced_seq() - durable_base;
        while (follower.applied_records() - applied_base < target) {
          if (NowUs() - acked > 2'000'000) break;  // stuck: counted below
          std::this_thread::yield();
        }
        lag.push_back(static_cast<uint64_t>(NowUs() - acked));
      }
      const int64_t due =
          load_start + static_cast<int64_t>(i + 1) * kWindowUs;
      const int64_t now = NowUs();
      if (now < due) {
        std::this_thread::sleep_for(std::chrono::microseconds(due - now));
      }
    }
  };
  std::thread load_mutator([&] { mutate(false); });
  mutate(true);
  load_mutator.join();
  const int64_t load_us = NowUs() - load_start;
  if (!Eventually([&] {
        return follower.applied_records() - applied_base >= kRecords;
      })) {
    std::fprintf(stderr, "FAIL: follower applied %llu of %u records\n",
                 static_cast<unsigned long long>(follower.applied_records() -
                                                 applied_base),
                 kRecords);
    return 1;
  }
  if (lag.size() < kRecords / 4) {
    std::fprintf(stderr, "FAIL: only %zu of %u records were probed\n",
                 lag.size(), kRecords);
    return 1;
  }
  std::sort(lag.begin(), lag.end());
  const uint64_t p50 = Percentile(lag, 0.50);
  const uint64_t p99 = Percentile(lag, 0.99);
  const double throughput =
      static_cast<double>(kRecords) * 1e6 / static_cast<double>(load_us);

  // ---- Acceptance: lag p50 under one group-commit window, and the
  // follower serves the identical verdict after the load. ----
  if (p50 >= kWindowUs) {
    std::fprintf(stderr,
                 "FAIL: lag p50 %llu us >= group-commit window %u us\n",
                 static_cast<unsigned long long>(p50), kWindowUs);
    return 1;
  }
  Response primary_verdict = primary.Execute(ContainRequest(sid));
  Response follower_verdict = follower_service.Execute(ContainRequest(sid));
  MustOk(primary_verdict.status);
  MustOk(follower_verdict.status);
  if (primary_verdict.verdict != follower_verdict.verdict) {
    std::fprintf(stderr, "FAIL: verdict diverged between primary/follower\n");
    return 1;
  }

  follower.Stop();
  transport.Stop();

  std::printf("replication lag over %zu records at %.0f rec/s "
              "(window %u us): p50 %llu us, p99 %llu us\n",
              lag.size(), throughput, kWindowUs,
              static_cast<unsigned long long>(p50),
              static_cast<unsigned long long>(p99));

  // ---- Failover series ----
  std::vector<uint64_t> failover;
  failover.reserve(kFailoverTrials);
  for (uint32_t trial = 0; trial < kFailoverTrials; ++trial) {
    failover.push_back(Must(FailoverTrial(trial)));
  }
  std::sort(failover.begin(), failover.end());
  const uint64_t failover_p50 = Percentile(failover, 0.50);
  const uint64_t failover_p99 = Percentile(failover, 0.99);
  // Sanity bound, far above the expected detection + promotion cost:
  // the threshold is 200 ms, so a p50 past 1.5 s means a wedged loop.
  if (failover_p50 >= 1'500'000) {
    std::fprintf(stderr, "FAIL: failover p50 %llu us >= 1.5 s\n",
                 static_cast<unsigned long long>(failover_p50));
    return 1;
  }
  std::printf("failover (partition to first accepted write, "
              "promote_after %u ms, %u trials): p50 %llu us, p99 %llu us\n",
              kPromoteAfterMs, kFailoverTrials,
              static_cast<unsigned long long>(failover_p50),
              static_cast<unsigned long long>(failover_p99));

  std::FILE* out = std::fopen("BENCH_replication.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_replication.json\n");
    return 1;
  }
  BeginBenchJson(out);
  std::fprintf(out, "  \"config\": {\"records\": %u, "
                    "\"group_commit_window_us\": %u, "
                    "\"target_rps\": 1000},\n",
               kRecords, kWindowUs);
  std::fprintf(out, "  \"lag\": {\"p50_us\": %llu, \"p99_us\": %llu, "
                    "\"stamped\": %zu},\n",
               static_cast<unsigned long long>(p50),
               static_cast<unsigned long long>(p99), lag.size());
  std::fprintf(out, "  \"failover\": {\"p50_us\": %llu, \"p99_us\": %llu, "
                    "\"promote_after_ms\": %u, \"trials\": %u},\n",
               static_cast<unsigned long long>(failover_p50),
               static_cast<unsigned long long>(failover_p99),
               kPromoteAfterMs, kFailoverTrials);
  std::fprintf(out, "  \"throughput_rps\": %.1f\n}\n", throughput);
  std::fclose(out);
  std::printf("wrote BENCH_replication.json\n");
  return 0;
}

}  // namespace
}  // namespace oocq::bench

int main() { return oocq::bench::Run(); }
