// Quickstart: build a schema, parse a query, and minimize it — the
// paper's Example 1.1 in ~40 lines of API use.
//
//   $ ./quickstart

#include <cstdio>

#include "core/optimizer.h"
#include "parser/parser.h"
#include "query/printer.h"

int main() {
  // 1. Declare the schema (or build one programmatically with
  //    oocq::SchemaBuilder). Discount clients may only rent automobiles.
  oocq::StatusOr<oocq::Schema> schema = oocq::ParseSchema(R"(
schema VehicleRental {
  class Vehicle  { VehId: String; }
  class Auto     under Vehicle { Doors: Int; }
  class Trailer  under Vehicle { Axles: Int; }
  class Truck    under Vehicle { Payload: Real; }
  class Client   { Name: String; VehRented: {Vehicle}; }
  class Regular  under Client { }
  class Discount under Client { Rate: Real; VehRented: {Auto}; }
})");
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }

  // 2. Ask for all vehicles currently rented to discount clients.
  oocq::QueryOptimizer optimizer(*schema);
  oocq::StatusOr<oocq::OptimizeReport> report = optimizer.OptimizeText(
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }");
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  // 3. The typing constraints prove only Auto objects can qualify.
  std::printf("%s", report->Summary(*schema).c_str());
  std::printf("\nThe optimizer proved the query equivalent to:\n  %s\n",
              oocq::UnionQueryToString(*schema, report->optimized).c_str());
  return 0;
}
