// A richer domain scenario: a university course-catalog OODB. Shows the
// three core capabilities on one schema:
//   1. exact minimization of a positive query over a deep hierarchy
//      (Example 1.2 / 4.1 at scale),
//   2. containment checks between user queries (detecting when one query
//      subsumes another, e.g. for cached-view reuse),
//   3. the implied-inequality effect of Example 1.3.
//
//   $ ./university_catalog

#include <cstdio>

#include "core/containment.h"
#include "core/optimizer.h"
#include "parser/parser.h"
#include "query/printer.h"

namespace {

using namespace oocq;

template <typename T>
T Must(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(value);
}

}  // namespace

int main() {
  // Person is partitioned into Undergrad/Grad/Professor/Staff; Course
  // into Lecture and Seminar. Seminars may only enroll grad students;
  // professors advise only grad students.
  Schema schema = Must(ParseSchema(R"(
schema University {
  class Person    { Name: String; }
  class Student   under Person { Credits: Int; }
  class Undergrad under Student { }
  class Grad      under Student { Thesis: String; }
  class Professor under Person { Advisees: {Grad}; }
  class Staff     under Person { }
  class Course    { Code: String; Enrolled: {Student}; Teacher: Professor; }
  class Lecture   under Course { }
  class Seminar   under Course { Enrolled: {Grad}; }
})"));
  QueryOptimizer optimizer(schema);

  // ---- 1. Minimization over the hierarchy ---------------------------
  // "Students enrolled in a course whose teacher advises them."
  // Advisees are always grad students, so the optimizer proves the
  // Undergrad disjuncts unsatisfiable and narrows s to Grad.
  const char* advisee_query =
      "{ s | exists c exists p (s in Student & c in Course & p in Professor "
      "& s in c.Enrolled & p = c.Teacher & s in p.Advisees) }";
  std::printf("Q1: %s\n", advisee_query);
  OptimizeReport report = Must(optimizer.OptimizeText(advisee_query));
  std::printf("%s\n", report.Summary(schema).c_str());

  // ---- 2. Containment between user queries --------------------------
  // A cached view: "grad students enrolled in some seminar".
  ConjunctiveQuery view = Must(ParseQuery(
      schema,
      "{ s | exists c (s in Grad & c in Seminar & s in c.Enrolled) }"));
  // A user query: "students enrolled in a seminar" — every answer is a
  // grad (typing), so the view answers it exactly.
  ConjunctiveQuery user = Must(ParseQuery(
      schema,
      "{ s | exists c (s in Student & c in Seminar & s in c.Enrolled) }"));
  bool view_in_user = Must(optimizer.IsContained(view, user));
  bool user_in_view = Must(optimizer.IsContained(user, view));
  std::printf("view  = %s\n", QueryToString(schema, view).c_str());
  std::printf("user  = %s\n", QueryToString(schema, user).c_str());
  std::printf("view <= user: %s, user <= view: %s  => %s\n\n",
              view_in_user ? "yes" : "no", user_in_view ? "yes" : "no",
              view_in_user && user_in_view
                  ? "EQUIVALENT: answer the user query from the cached view"
                  : "not equivalent");

  // ---- 3. Implied inequality (Example 1.3 pattern) -------------------
  // Two courses whose teachers advise an undergrad-free/grad pair...
  // here: c teaches a lecture, d a seminar — c != d is implied because
  // Lecture and Seminar are disjoint terminal classes.
  ConjunctiveQuery with_ineq = Must(ParseQuery(
      schema,
      "{ p | exists c exists d (p in Professor & c in Lecture & "
      "d in Seminar & p = c.Teacher & p = d.Teacher & c != d) }"));
  ConjunctiveQuery without_ineq = Must(ParseQuery(
      schema,
      "{ p | exists c exists d (p in Professor & c in Lecture & "
      "d in Seminar & p = c.Teacher & p = d.Teacher) }"));
  bool equivalent =
      Must(EquivalentQueries(schema, with_ineq, without_ineq));
  std::printf("Q2  = %s\n", QueryToString(schema, with_ineq).c_str());
  std::printf("Q2' = %s\n", QueryToString(schema, without_ineq).c_str());
  std::printf("the explicit 'c != d' is %s (disjoint terminal classes)\n",
              equivalent ? "REDUNDANT" : "required");
  return 0;
}
