// The oocq query service as a TCP daemon: sessions, admission control,
// deadlines, batching and (optionally) a durable catalog over the line
// protocol of docs/server.md.
//
//   oocq_serve [--port=N] [--transport=event|thread] [--workers=N]
//              [--queue=N] [--threads=N] [--io_threads=N]
//              [--idle_timeout_ms=N] [--deadline_ms=N] [--data-dir=DIR]
//              [--snapshot_interval_s=N] [--failpoints=SPEC]
//              [--max_disjuncts=N] [--max_work_units=N]
//              [--max_resident_bytes=N] [--watchdog_s=N]
//              [--follow=HOST:PORT] [--promote_after_ms=N]
//              [--log-level=debug|info|warn|error|off] [--log-json]
//              [--slow_request_us=N] [--stats-file=FILE]
//              [--stats_interval_s=N] [--trace=FILE] [--metrics] [--smoke]
//
// Two transports serve the same protocol (docs/server.md): the default
// epoll event loop (--transport=event) scales to tens of thousands of
// concurrent connections; --transport=thread keeps the reference
// thread-per-connection model.
//
// With --data-dir the server opens a DurableCatalog in DIR
// (docs/persistence.md): restart replays snapshot + WAL, re-registers
// every session, named query and state, and warm-starts each session's
// containment cache. Without it the server is purely in-memory.
//
// With --follow=HOST:PORT the node starts as a read-only replication
// follower (docs/replication.md): it tails HOST:PORT's WAL over REPL
// SUBSCRIBE, replays every shipped record into its own service (and its
// own WAL, with --data-dir), and answers read verbs with verdicts
// identical to the primary's. Mutating verbs answer
// ERR FAILED_PRECONDITION until promotion — by REPL PROMOTE on this
// node, or automatically after the primary has been unreachable for
// --promote_after_ms milliseconds.
//
// Shutdown: SIGINT/SIGTERM stop the listener, let in-flight requests
// finish and write their responses, then drain the service (and, with
// --data-dir, take a final compacting snapshot). The signal handler only
// writes one byte to a self-pipe; all real work happens on the main
// thread.

#include <signal.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "flag_util.h"
#include "persist/catalog.h"
#include "replicate/follower.h"
#include "replicate/peer.h"
#include "server/event_server.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace oocq;
using namespace oocq::server;

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 1;
  // write() is async-signal-safe; the result is deliberately unused (the
  // pipe full means a byte is already pending, which is just as good).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

/// Sends `script` over a fresh connection and returns everything the
/// server wrote back (empty on connect failure).
std::string RunScript(uint16_t port, const char* script) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    ::close(fd);
    return "";
  }
  if (::send(fd, script, std::strlen(script), 0) < 0) {
    std::perror("send");
    ::close(fd);
    return "";
  }
  std::string all;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(got));
  }
  ::close(fd);
  return all;
}

/// One scripted client conversation over a real socket — the --smoke
/// self-test and a template for writing clients.
bool RunSmokeConversation(uint16_t port) {
  const char* script =
      "PING\n"
      "SESSION NEW\n"
      "schema Smoke {\n"
      "  class Vehicle { }\n"
      "  class Auto under Vehicle { }\n"
      "}\n"
      ".\n"
      "DEFINE s1 q1\n"
      "{ x | x in Auto }\n"
      ".\n"
      "CONTAIN s1 id=smoke-1\n"
      "@q1\n"
      "{ x | x in Vehicle }\n"
      ".\n"
      "MINIMIZE s1\n"
      "{ x | x in Auto & x in Vehicle }\n"
      ".\n"
      "METRICS\n"
      "QUIT\n";
  std::string all = RunScript(port, script);
  std::printf("%s", all.c_str());
  // Seven replies (PING, SESSION NEW, DEFINE, CONTAIN, MINIMIZE, METRICS,
  // QUIT), the containment verdict among them.
  return all.find("session=s1") != std::string::npos &&
         all.find("contained=1") != std::string::npos &&
         all.find("server/requests") != std::string::npos;
}

/// The warm half of the persistence smoke: the restarted server must
/// still know session s1 and its named query, and the repeated CONTAIN
/// must be answered from the warm-started cache.
bool RunWarmConversation(uint16_t port) {
  const char* script =
      "PING\n"
      "CONTAIN s1 id=smoke-warm\n"
      "@q1\n"
      "{ x | x in Vehicle }\n"
      ".\n"
      "METRICS\n"
      "QUIT\n";
  std::string all = RunScript(port, script);
  std::printf("%s", all.c_str());
  return all.find("contained=1") != std::string::npos &&
         all.find("sessions_restored") != std::string::npos &&
         all.find("cache/hit") != std::string::npos;
}

/// Samples the service's progress counters: requests pending while no
/// request completes across two consecutive samples means the worker
/// pool is wedged (e.g. every worker stalled — reproducible with the
/// pool/dispatch=delay failpoint). Threads can't be safely unwedged from
/// outside, so the watchdog alarms instead: one stderr line plus the
/// server/watchdog_stalls counter, and the HEALTH verb exposes the same
/// pending/completed state to remote probes (docs/robustness.md).
class Watchdog {
 public:
  Watchdog(const OocqService* service, uint64_t interval_s)
      : service_(service), interval_s_(interval_s) {
    if (interval_s_ > 0) thread_ = std::thread([this] { Loop(); });
  }
  ~Watchdog() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    uint64_t last_completed = service_->completed();
    while (!stop_.load(std::memory_order_acquire)) {
      // Sleep in slices so shutdown never waits out a full interval.
      for (uint64_t slept_ms = 0; slept_ms < interval_s_ * 1000 &&
                                  !stop_.load(std::memory_order_acquire);
           slept_ms += 100) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (stop_.load(std::memory_order_acquire)) break;
      uint64_t completed = service_->completed();
      uint32_t pending = service_->pending();
      if (pending > 0 && completed == last_completed) {
        MetricAdd("server/watchdog_stalls", 1);
        OOCQ_LOG(Warn, "watchdog")
            .Msg("requests pending and none completed — worker pool wedged?")
            .With("pending", static_cast<uint64_t>(pending))
            .With("interval_s", interval_s_);
      }
      last_completed = completed;
    }
  }

  const OocqService* service_;
  uint64_t interval_s_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Periodically rewrites `path` with the service's Prometheus-style STATS
/// text (docs/observability.md#stats) — the file-scrape twin of the STATS
/// verb, for environments where the collector reads files rather than
/// speaking the protocol. Write-then-rename keeps every scrape atomic.
class StatsDumper {
 public:
  StatsDumper(const OocqService* service, std::string path,
              uint64_t interval_s)
      : service_(service), path_(std::move(path)), interval_s_(interval_s) {
    if (!path_.empty() && interval_s_ > 0) {
      thread_ = std::thread([this] { Loop(); });
    }
  }
  ~StatsDumper() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      for (uint64_t slept_ms = 0; slept_ms < interval_s_ * 1000 &&
                                  !stop_.load(std::memory_order_acquire);
           slept_ms += 100) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      WriteOnce();
    }
    WriteOnce();  // final dump so shutdown state is observable
  }

  void WriteOnce() {
    const std::string text = service_->StatsText();
    const std::string tmp = path_ + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
      OOCQ_LOG(Warn, "serve").Msg("stats dump open failed").With("path", tmp);
      return;
    }
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (!wrote || std::rename(tmp.c_str(), path_.c_str()) != 0) {
      OOCQ_LOG(Warn, "serve").Msg("stats dump failed").With("path", path_);
    }
  }

  const OocqService* service_;
  std::string path_;
  uint64_t interval_s_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Owns the node's replication tail across role changes. A node starts
/// with at most one follower (--follow); when a higher-term primary
/// fences this node (REPL DEMOTE carrying primary=HOST:PORT, or the
/// SUBSCRIBE term handshake), the service's demotion handler lands here
/// and the node rejoins the fleet as a follower of the named winner —
/// same tail machinery, new target. The mutex serializes rejoins against
/// each other and against shutdown.
class RejoinCoordinator {
 public:
  RejoinCoordinator(OocqService* service, uint32_t auto_promote_after_ms)
      : service_(service), auto_promote_after_ms_(auto_promote_after_ms) {}

  /// Installs the initial --follow tail (may be null for a primary).
  void Adopt(std::unique_ptr<replicate::Follower> follower) {
    std::lock_guard<std::mutex> lock(mu_);
    follower_ = std::move(follower);
    if (follower_) follower_->Start();
  }

  /// Demotion handler: fenced at `term`, told to follow `new_primary`.
  /// An empty target means the demoter did not name a successor (tied
  /// SUBSCRIBE handshake); the node stays fenced until a router sweep or
  /// operator names one.
  void OnDemoted(uint64_t term, const std::string& new_primary) {
    if (new_primary.empty()) {
      OOCQ_LOG(Warn, "serve")
          .Msg("fenced without a named successor; staying read-only")
          .With("term", term);
      return;
    }
    std::string host;
    uint16_t port = 0;
    if (!replicate::SplitHostPort(new_primary, &host, &port)) {
      OOCQ_LOG(Warn, "serve")
          .Msg("fenced but successor address is malformed")
          .With("term", term)
          .With("primary", new_primary);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    // The old tail (if any) has already left its loop — a fenced node is
    // read-only again, but the loop exited at promotion time and a
    // primary never had one. Stop() just joins and detaches the probe.
    if (follower_) follower_->Stop();
    follower_.reset();
    replicate::FollowerOptions options;
    options.host = host;
    options.port = port;
    options.auto_promote_after_ms = auto_promote_after_ms_;
    follower_ = std::make_unique<replicate::Follower>(service_, options);
    follower_->Start();
    OOCQ_LOG(Info, "serve")
        .Msg("fenced; rejoining as follower of the new primary")
        .With("term", term)
        .With("primary", new_primary);
  }

  /// Stops whichever tail is current and refuses further rejoins. Call
  /// before the service drains.
  void Shutdown() {
    std::lock_guard<std::mutex> lock(mu_);
    shut_down_ = true;
    follower_.reset();  // Stop() runs in the destructor
  }

 private:
  OocqService* const service_;
  const uint32_t auto_promote_after_ms_;
  std::mutex mu_;
  bool shut_down_ = false;
  std::unique_ptr<replicate::Follower> follower_;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7733, workers = 4, queue = 64, threads = 1, deadline_ms = 0;
  uint64_t snapshot_interval_s = 60;
  uint64_t max_disjuncts = 0, max_work_units = 0, max_resident_bytes = 0;
  uint64_t watchdog_s = 5;
  uint64_t io_threads = 8, idle_timeout_ms = 0;
  uint64_t slow_request_us = 0, stats_interval_s = 10;
  uint64_t promote_after_ms = 0;
  std::string follow;
  std::string transport = "event";
  std::string failpoints;
  std::string trace_path;
  std::string data_dir;
  std::string log_level = "info";
  std::string stats_file;
  bool want_metrics = false, smoke = false, log_json = false;
  bool no_compile = false;

  oocq::examples::FlagSet flags(
      "oocq_serve", "",
      "Line protocol on the socket; see docs/server.md. Send SIGINT for a\n"
      "graceful drain.");
  flags.Uint("port", &port, "N",
             "listen port (default 7733; 0 = ephemeral, printed on startup)");
  flags.Str("transport", &transport, "event|thread",
            "epoll event loop or thread-per-connection (default event)");
  flags.Uint("workers", &workers, "N",
             "requests executing concurrently (default 4)");
  flags.Uint("queue", &queue, "N",
             "waiting requests beyond --workers before shedding with "
             "UNAVAILABLE (default 64)");
  flags.Uint("threads", &threads, "N",
             "engine threads per request (default 1)");
  flags.Uint("io_threads", &io_threads, "N",
             "event transport: request dispatch pool size (default 8; "
             "0 = one per hardware thread)");
  flags.Uint("idle_timeout_ms", &idle_timeout_ms, "N",
             "event transport: close idle connections after N ms "
             "(default 0 = never)");
  flags.Uint("deadline_ms", &deadline_ms, "N",
             "default per-request deadline (default 0 = unbounded)");
  flags.Str("data-dir", &data_dir, "DIR",
            "durable catalog directory (docs/persistence.md); "
            "default in-memory only");
  flags.Uint("snapshot_interval_s", &snapshot_interval_s, "N",
             "snapshot cadence with --data-dir (default 60; "
             "0 = snapshot only on shutdown)");
  flags.Bool("no-compile", &no_compile,
             "disable the query-compilation fast paths (bytecode VM + "
             "compiled subset scan; docs/compilation.md) for A/B runs");
  flags.Str("failpoints", &failpoints, "SPEC",
            "arm fault injection, e.g. 'wal/fsync=error@3,tcp/accept="
            "delay:50' (env OOCQ_FAILPOINTS also read)");
  flags.Uint("max_disjuncts", &max_disjuncts, "N",
             "resource ceiling; overruns return retryable "
             "RESOURCE_EXHAUSTED (default 0 = unlimited)");
  flags.Uint("max_work_units", &max_work_units, "N",
             "resource ceiling; overruns return retryable "
             "RESOURCE_EXHAUSTED (default 0 = unlimited)");
  flags.Uint("max_resident_bytes", &max_resident_bytes, "N",
             "resource ceiling; overruns return retryable "
             "RESOURCE_EXHAUSTED (default 0 = unlimited)");
  flags.Uint("watchdog_s", &watchdog_s, "N",
             "stall watchdog sampling interval (default 5; 0 disables)");
  flags.Str("follow", &follow, "HOST:PORT",
            "start as a read-only follower tailing this primary's WAL "
            "(docs/replication.md)");
  flags.Uint("promote_after_ms", &promote_after_ms, "N",
             "with --follow: self-promote to primary after the primary "
             "has been unreachable N ms (default 0 = never)");
  flags.Str("log-level", &log_level, "LEVEL",
            "stderr log threshold: debug|info|warn|error|off "
            "(default info; docs/observability.md#logging)");
  flags.Bool("log-json", &log_json,
             "emit log lines as JSONL instead of human-readable text");
  flags.Uint("slow_request_us", &slow_request_us, "N",
             "log requests slower than N microseconds at Warn with their "
             "span tree (default 0 = off)");
  flags.Str("stats-file", &stats_file, "FILE",
            "periodically rewrite FILE with Prometheus-style STATS text");
  flags.Uint("stats_interval_s", &stats_interval_s, "N",
             "--stats-file rewrite cadence (default 10)");
  flags.Str("trace", &trace_path, "FILE",
            "write a Chrome trace of all request spans on shutdown");
  flags.Bool("metrics", &want_metrics,
             "print the metrics registry JSON on shutdown");
  flags.Bool("smoke", &smoke,
             "self-test: ephemeral port, one scripted conversation, "
             "exit 0/1");
  if (flags.Parse(argc, argv) != argc) {
    std::fprintf(stderr, "error: unexpected positional argument\n");
    return flags.UsageError();
  }
  if (port > 65535) {
    std::fprintf(stderr, "error: --port out of range\n");
    return flags.UsageError();
  }
  if (transport != "event" && transport != "thread") {
    std::fprintf(stderr,
                 "error: --transport must be 'event' or 'thread'\n");
    return flags.UsageError();
  }
  std::string follow_host;
  uint64_t follow_port = 0;
  if (!follow.empty()) {
    size_t colon = follow.rfind(':');
    if (colon != std::string::npos) {
      follow_host = follow.substr(0, colon);
      follow_port = std::strtoull(follow.c_str() + colon + 1, nullptr, 10);
    }
    if (follow_host.empty() || follow_port == 0 || follow_port > 65535) {
      std::fprintf(stderr, "error: --follow must be HOST:PORT\n");
      return flags.UsageError();
    }
  }
  LogConfig log_config;
  if (!ParseLogLevel(log_level, &log_config.level)) {
    std::fprintf(stderr, "error: --log-level must be one of "
                         "debug|info|warn|error|off\n");
    return flags.UsageError();
  }
  log_config.json = log_json;
  ConfigureLogging(log_config);

  TraceLog trace_log;
  std::optional<TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(&trace_log);

  ServiceOptions service_options;
  service_options.engine.enable_compilation = !no_compile;
  service_options.engine.parallel.num_threads = static_cast<uint32_t>(threads);
  service_options.max_in_flight = static_cast<uint32_t>(workers);
  service_options.max_queue_depth = static_cast<uint32_t>(queue);
  service_options.default_deadline_ms = deadline_ms;
  service_options.budget.max_expanded_disjuncts = max_disjuncts;
  service_options.budget.max_subset_work_units = max_work_units;
  service_options.budget.max_resident_bytes = max_resident_bytes;
  service_options.slow_request_us = slow_request_us;
  service_options.failpoints = failpoints;  // env OOCQ_FAILPOINTS also read
  service_options.read_only = !follow.empty();

  // Opens (or re-opens) the durable catalog; recovery problems degrade to
  // a logged cold start inside Open(), so failure here is environmental.
  auto open_catalog = [&]() -> std::shared_ptr<persist::DurableCatalog> {
    if (data_dir.empty()) return nullptr;
    persist::DurableCatalogOptions catalog_options;
    catalog_options.data_dir = data_dir;
    catalog_options.snapshot_interval_s =
        static_cast<uint32_t>(snapshot_interval_s);
    StatusOr<std::unique_ptr<persist::DurableCatalog>> opened =
        persist::DurableCatalog::Open(catalog_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
      std::exit(1);
    }
    std::shared_ptr<persist::DurableCatalog> catalog = *std::move(opened);
    const persist::DurableCatalog::Recovery& recovery = catalog->recovery();
    OOCQ_LOG(Info, "serve")
        .Msg("catalog opened")
        .With("data_dir", data_dir)
        .With("note", recovery.note)
        .With("snapshot_seq", recovery.snapshot_seq)
        .With("snapshot_records", recovery.snapshot_records)
        .With("wal_records", recovery.wal_records)
        .With("wal_truncated_bytes", recovery.wal_truncated_bytes);
    return catalog;
  };

  service_options.catalog = open_catalog();
  auto service = std::make_unique<OocqService>(service_options);

  // Role changes flow through the coordinator: the initial --follow tail
  // starts here, and a demotion (split-brain fencing, docs/replication.md)
  // rejoins this node as a follower of the named winner.
  RejoinCoordinator coordinator(service.get(),
                                static_cast<uint32_t>(promote_after_ms));
  service->SetDemotionHandler(
      [&coordinator](uint64_t term, const std::string& new_primary) {
        coordinator.OnDemoted(term, new_primary);
      });

  // The replication tail, when this node is a follower. Started after the
  // transport below so clients can probe REPL STATUS during the initial
  // sync; stopped before the service dies so no apply races teardown.
  std::unique_ptr<replicate::Follower> follower;
  if (!follow.empty()) {
    replicate::FollowerOptions follower_options;
    follower_options.host = follow_host;
    follower_options.port = static_cast<uint16_t>(follow_port);
    follower_options.auto_promote_after_ms =
        static_cast<uint32_t>(promote_after_ms);
    follower =
        std::make_unique<replicate::Follower>(service.get(), follower_options);
    OOCQ_LOG(Info, "serve")
        .Msg("starting as replication follower")
        .With("primary", follow)
        .With("promote_after_ms", promote_after_ms);
  }

  // Both transports implement server/transport.h's Transport contract;
  // everything below (smoke, signals, graceful drain) is transport-
  // agnostic.
  auto make_server = [&](uint16_t listen_port) -> std::unique_ptr<Transport> {
    if (transport == "thread") {
      TcpServerOptions options;
      options.port = listen_port;
      return std::make_unique<TcpServer>(service.get(), options);
    }
    EventServerOptions options;
    options.port = listen_port;
    options.dispatch_threads = static_cast<uint32_t>(io_threads);
    options.idle_timeout_ms = idle_timeout_ms;
    return std::make_unique<EventServer>(service.get(), options);
  };
  std::unique_ptr<Transport> server =
      make_server(smoke ? 0 : static_cast<uint16_t>(port));
  Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  OOCQ_LOG(Info, "serve")
      .Msg("listening on 127.0.0.1")
      .With("port", static_cast<uint64_t>(server->port()))
      .With("transport", transport)
      .With("workers", static_cast<uint64_t>(service_options.max_in_flight))
      .With("queue", static_cast<uint64_t>(service_options.max_queue_depth))
      .With("threads",
            static_cast<uint64_t>(service_options.engine.parallel.num_threads))
      .With("deadline_ms", deadline_ms)
      .With("data_dir", data_dir);
  coordinator.Adopt(std::move(follower));

  std::optional<Watchdog> watchdog;
  watchdog.emplace(service.get(), watchdog_s);
  std::optional<StatsDumper> stats_dumper;
  stats_dumper.emplace(service.get(), stats_file, stats_interval_s);

  int rc = 0;
  if (smoke) {
    coordinator.Shutdown();  // --smoke and --follow do not combine
    bool ok = RunSmokeConversation(server->port());
    server->Stop();
    server.reset();
    if (ok && !data_dir.empty()) {
      stats_dumper.reset();
      watchdog.reset();
      service.reset();  // final snapshot persists the warm cache
      // Second phase: a fresh service over the same data dir must restore
      // s1, @q1 and the cache without any re-registration.
      service_options.catalog = open_catalog();
      service = std::make_unique<OocqService>(service_options);
      watchdog.emplace(service.get(), watchdog_s);
      stats_dumper.emplace(service.get(), stats_file, stats_interval_s);
      server = make_server(0);
      started = server->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
      }
      ok = RunWarmConversation(server->port());
      server->Stop();
      server.reset();
    }
    if (want_metrics) {
      std::printf("%s\n", service->metrics().JsonString().c_str());
    }
    stats_dumper.reset();
    watchdog.reset();
    service.reset();
    std::fprintf(stderr, "smoke: %s\n", ok ? "PASS" : "FAIL");
    rc = ok ? 0 : 1;
  } else {
    if (::pipe(g_signal_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    struct sigaction action{};
    action.sa_handler = OnSignal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    OOCQ_LOG(Info, "serve")
        .Msg("draining")
        .With("connections", server->connections_accepted());
    server->Stop();  // graceful: in-flight requests finish and respond
    if (want_metrics) {
      std::printf("%s\n", service->metrics().JsonString().c_str());
    }
    server.reset();
    coordinator.Shutdown();  // stops the tail before the service drains
    stats_dumper.reset();  // final dump happens before the service dies
    watchdog.reset();
    service.reset();  // drains, then final catalog snapshot
    OOCQ_LOG(Info, "serve").Msg("drained, shutting down");
  }

  trace_session.reset();
  if (!trace_path.empty()) {
    Status written = trace_log.WriteChromeTrace(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: wrote %zu span(s) to %s\n",
                 trace_log.events().size(), trace_path.c_str());
  }
  return rc;
}
