// The oocq query service as a TCP daemon: sessions, admission control,
// deadlines, batching and (optionally) a durable catalog over the line
// protocol of docs/server.md.
//
//   oocq_serve [--port=N] [--workers=N] [--queue=N] [--threads=N]
//              [--deadline_ms=N] [--data-dir=DIR] [--snapshot_interval_s=N]
//              [--failpoints=SPEC] [--max_disjuncts=N] [--max_work_units=N]
//              [--max_resident_bytes=N] [--watchdog_s=N]
//              [--trace=FILE] [--metrics] [--smoke]
//
// With --data-dir the server opens a DurableCatalog in DIR
// (docs/persistence.md): restart replays snapshot + WAL, re-registers
// every session, named query and state, and warm-starts each session's
// containment cache. Without it the server is purely in-memory.
//
// Shutdown: SIGINT/SIGTERM stop the listener, let in-flight requests
// finish and write their responses, then drain the service (and, with
// --data-dir, take a final compacting snapshot). The signal handler only
// writes one byte to a self-pipe; all real work happens on the main
// thread.

#include <signal.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "persist/catalog.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace oocq;
using namespace oocq::server;

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 1;
  // write() is async-signal-safe; the result is deliberately unused (the
  // pipe full means a byte is already pending, which is just as good).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: oocq_serve [--port=N] [--workers=N] [--queue=N] [--threads=N] "
      "[--deadline_ms=N] [--data-dir=DIR] [--snapshot_interval_s=N] "
      "[--failpoints=SPEC] [--max_disjuncts=N] [--max_work_units=N] "
      "[--max_resident_bytes=N] [--watchdog_s=N] "
      "[--trace=FILE] [--metrics] [--smoke] [--help]\n"
      "  --port=N        listen port (default 7733; 0 picks an ephemeral\n"
      "                  port, printed on startup)\n"
      "  --workers=N     requests executing concurrently (default 4)\n"
      "  --queue=N       admitted-but-waiting requests beyond --workers\n"
      "                  before shedding with UNAVAILABLE (default 64)\n"
      "  --threads=N     engine threads per request (default 1: concurrency\n"
      "                  comes from independent requests)\n"
      "  --deadline_ms=N default per-request deadline when a request\n"
      "                  carries none (default 0 = unbounded)\n"
      "  --data-dir=DIR  durable catalog directory (docs/persistence.md);\n"
      "                  restart replays snapshot+WAL and warm-starts the\n"
      "                  containment caches (default: in-memory only)\n"
      "  --snapshot_interval_s=N\n"
      "                  background snapshot cadence with --data-dir\n"
      "                  (default 60; 0 = snapshot only on shutdown)\n"
      "  --failpoints=SPEC\n"
      "                  arm fault-injection points, e.g.\n"
      "                  'wal/fsync=error@3,tcp/accept=delay:50'\n"
      "                  (support/failpoint.h; also honored from the\n"
      "                  OOCQ_FAILPOINTS environment variable)\n"
      "  --max_disjuncts=N / --max_work_units=N / --max_resident_bytes=N\n"
      "                  service-wide resource ceilings; overruns return\n"
      "                  retryable RESOURCE_EXHAUSTED (docs/robustness.md;\n"
      "                  default 0 = unlimited)\n"
      "  --watchdog_s=N  watchdog sampling interval: warn (and count\n"
      "                  server/watchdog_stalls) when requests are pending\n"
      "                  but none completes across two samples (default 5;\n"
      "                  0 disables). HEALTH reports the same counters on\n"
      "                  demand.\n"
      "  --trace=FILE    write a Chrome trace of all request spans to FILE\n"
      "                  on shutdown\n"
      "  --metrics       print the metrics registry JSON on shutdown\n"
      "  --smoke         self-test: ephemeral port, one scripted client\n"
      "                  conversation (with --data-dir: restart the service\n"
      "                  and verify the warm catalog), exit 0/1\n"
      "  --help          this message\n"
      "Line protocol on the socket; see docs/server.md. Send SIGINT for a\n"
      "graceful drain.\n");
  return 2;
}

bool ParseUintFlag(const std::string& flag, const char* prefix,
                   uint64_t* out) {
  size_t len = std::strlen(prefix);
  if (flag.rfind(prefix, 0) != 0) return false;
  *out = std::strtoull(flag.c_str() + len, nullptr, 10);
  return true;
}

/// Sends `script` over a fresh connection and returns everything the
/// server wrote back (empty on connect failure).
std::string RunScript(uint16_t port, const char* script) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    ::close(fd);
    return "";
  }
  if (::send(fd, script, std::strlen(script), 0) < 0) {
    std::perror("send");
    ::close(fd);
    return "";
  }
  std::string all;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(got));
  }
  ::close(fd);
  return all;
}

/// One scripted client conversation over a real socket — the --smoke
/// self-test and a template for writing clients.
bool RunSmokeConversation(uint16_t port) {
  const char* script =
      "PING\n"
      "SESSION NEW\n"
      "schema Smoke {\n"
      "  class Vehicle { }\n"
      "  class Auto under Vehicle { }\n"
      "}\n"
      ".\n"
      "DEFINE s1 q1\n"
      "{ x | x in Auto }\n"
      ".\n"
      "CONTAIN s1 id=smoke-1\n"
      "@q1\n"
      "{ x | x in Vehicle }\n"
      ".\n"
      "MINIMIZE s1\n"
      "{ x | x in Auto & x in Vehicle }\n"
      ".\n"
      "METRICS\n"
      "QUIT\n";
  std::string all = RunScript(port, script);
  std::printf("%s", all.c_str());
  // Seven replies (PING, SESSION NEW, DEFINE, CONTAIN, MINIMIZE, METRICS,
  // QUIT), the containment verdict among them.
  return all.find("session=s1") != std::string::npos &&
         all.find("contained=1") != std::string::npos &&
         all.find("server/requests") != std::string::npos;
}

/// The warm half of the persistence smoke: the restarted server must
/// still know session s1 and its named query, and the repeated CONTAIN
/// must be answered from the warm-started cache.
bool RunWarmConversation(uint16_t port) {
  const char* script =
      "PING\n"
      "CONTAIN s1 id=smoke-warm\n"
      "@q1\n"
      "{ x | x in Vehicle }\n"
      ".\n"
      "METRICS\n"
      "QUIT\n";
  std::string all = RunScript(port, script);
  std::printf("%s", all.c_str());
  return all.find("contained=1") != std::string::npos &&
         all.find("sessions_restored") != std::string::npos &&
         all.find("cache/hit") != std::string::npos;
}

/// Samples the service's progress counters: requests pending while no
/// request completes across two consecutive samples means the worker
/// pool is wedged (e.g. every worker stalled — reproducible with the
/// pool/dispatch=delay failpoint). Threads can't be safely unwedged from
/// outside, so the watchdog alarms instead: one stderr line plus the
/// server/watchdog_stalls counter, and the HEALTH verb exposes the same
/// pending/completed state to remote probes (docs/robustness.md).
class Watchdog {
 public:
  Watchdog(const OocqService* service, uint64_t interval_s)
      : service_(service), interval_s_(interval_s) {
    if (interval_s_ > 0) thread_ = std::thread([this] { Loop(); });
  }
  ~Watchdog() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    uint64_t last_completed = service_->completed();
    while (!stop_.load(std::memory_order_acquire)) {
      // Sleep in slices so shutdown never waits out a full interval.
      for (uint64_t slept_ms = 0; slept_ms < interval_s_ * 1000 &&
                                  !stop_.load(std::memory_order_acquire);
           slept_ms += 100) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (stop_.load(std::memory_order_acquire)) break;
      uint64_t completed = service_->completed();
      uint32_t pending = service_->pending();
      if (pending > 0 && completed == last_completed) {
        MetricAdd("server/watchdog_stalls", 1);
        std::fprintf(stderr,
                     "oocq_serve: watchdog: %u request(s) pending and none "
                     "completed in %llus — worker pool wedged?\n",
                     pending, static_cast<unsigned long long>(interval_s_));
      }
      last_completed = completed;
    }
  }

  const OocqService* service_;
  uint64_t interval_s_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7733, workers = 4, queue = 64, threads = 1, deadline_ms = 0;
  uint64_t snapshot_interval_s = 60;
  uint64_t max_disjuncts = 0, max_work_units = 0, max_resident_bytes = 0;
  uint64_t watchdog_s = 5;
  std::string failpoints;
  std::string trace_path;
  std::string data_dir;
  bool want_metrics = false, smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (ParseUintFlag(flag, "--port=", &port) ||
        ParseUintFlag(flag, "--workers=", &workers) ||
        ParseUintFlag(flag, "--queue=", &queue) ||
        ParseUintFlag(flag, "--threads=", &threads) ||
        ParseUintFlag(flag, "--deadline_ms=", &deadline_ms) ||
        ParseUintFlag(flag, "--snapshot_interval_s=", &snapshot_interval_s) ||
        ParseUintFlag(flag, "--max_disjuncts=", &max_disjuncts) ||
        ParseUintFlag(flag, "--max_work_units=", &max_work_units) ||
        ParseUintFlag(flag, "--max_resident_bytes=", &max_resident_bytes) ||
        ParseUintFlag(flag, "--watchdog_s=", &watchdog_s)) {
      continue;
    }
    if (flag.rfind("--trace=", 0) == 0) {
      trace_path = flag.substr(8);
    } else if (flag.rfind("--failpoints=", 0) == 0) {
      failpoints = flag.substr(13);
    } else if (flag.rfind("--data-dir=", 0) == 0) {
      data_dir = flag.substr(11);
    } else if (flag == "--metrics") {
      want_metrics = true;
    } else if (flag == "--smoke") {
      smoke = true;
    } else if (flag == "--help") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      return Usage();
    }
  }
  if (port > 65535) {
    std::fprintf(stderr, "error: --port out of range\n");
    return Usage();
  }

  TraceLog trace_log;
  std::optional<TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(&trace_log);

  ServiceOptions service_options;
  service_options.engine.parallel.num_threads = static_cast<uint32_t>(threads);
  service_options.max_in_flight = static_cast<uint32_t>(workers);
  service_options.max_queue_depth = static_cast<uint32_t>(queue);
  service_options.default_deadline_ms = deadline_ms;
  service_options.budget.max_expanded_disjuncts = max_disjuncts;
  service_options.budget.max_subset_work_units = max_work_units;
  service_options.budget.max_resident_bytes = max_resident_bytes;
  service_options.failpoints = failpoints;  // env OOCQ_FAILPOINTS also read

  // Opens (or re-opens) the durable catalog; recovery problems degrade to
  // a logged cold start inside Open(), so failure here is environmental.
  auto open_catalog = [&]() -> std::shared_ptr<persist::DurableCatalog> {
    if (data_dir.empty()) return nullptr;
    persist::DurableCatalogOptions catalog_options;
    catalog_options.data_dir = data_dir;
    catalog_options.snapshot_interval_s =
        static_cast<uint32_t>(snapshot_interval_s);
    StatusOr<std::unique_ptr<persist::DurableCatalog>> opened =
        persist::DurableCatalog::Open(catalog_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
      std::exit(1);
    }
    std::shared_ptr<persist::DurableCatalog> catalog = *std::move(opened);
    const persist::DurableCatalog::Recovery& recovery = catalog->recovery();
    std::fprintf(stderr,
                 "oocq_serve: catalog %s: %s (snapshot seq=%llu records=%llu, "
                 "wal records=%llu truncated_bytes=%llu)\n",
                 data_dir.c_str(), recovery.note.c_str(),
                 static_cast<unsigned long long>(recovery.snapshot_seq),
                 static_cast<unsigned long long>(recovery.snapshot_records),
                 static_cast<unsigned long long>(recovery.wal_records),
                 static_cast<unsigned long long>(recovery.wal_truncated_bytes));
    return catalog;
  };

  service_options.catalog = open_catalog();
  auto service = std::make_unique<OocqService>(service_options);

  TcpServerOptions server_options;
  server_options.port = smoke ? 0 : static_cast<uint16_t>(port);
  auto server = std::make_unique<TcpServer>(service.get(), server_options);
  Status started = server->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "oocq_serve: listening on 127.0.0.1:%u "
               "(workers=%u queue=%u threads=%u deadline_ms=%llu%s%s)\n",
               server->port(), service_options.max_in_flight,
               service_options.max_queue_depth,
               service_options.engine.parallel.num_threads,
               static_cast<unsigned long long>(deadline_ms),
               data_dir.empty() ? "" : " data_dir=",
               data_dir.empty() ? "" : data_dir.c_str());

  std::optional<Watchdog> watchdog;
  watchdog.emplace(service.get(), watchdog_s);

  int rc = 0;
  if (smoke) {
    bool ok = RunSmokeConversation(server->port());
    server->Stop();
    server.reset();
    if (ok && !data_dir.empty()) {
      watchdog.reset();
      service.reset();  // final snapshot persists the warm cache
      // Second phase: a fresh service over the same data dir must restore
      // s1, @q1 and the cache without any re-registration.
      service_options.catalog = open_catalog();
      service = std::make_unique<OocqService>(service_options);
      watchdog.emplace(service.get(), watchdog_s);
      server_options.port = 0;
      server = std::make_unique<TcpServer>(service.get(), server_options);
      started = server->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
        return 1;
      }
      ok = RunWarmConversation(server->port());
      server->Stop();
      server.reset();
    }
    if (want_metrics) {
      std::printf("%s\n", service->metrics().JsonString().c_str());
    }
    watchdog.reset();
    service.reset();
    std::fprintf(stderr, "smoke: %s\n", ok ? "PASS" : "FAIL");
    rc = ok ? 0 : 1;
  } else {
    if (::pipe(g_signal_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    struct sigaction action{};
    action.sa_handler = OnSignal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr, "oocq_serve: draining %llu connection(s)...\n",
                 static_cast<unsigned long long>(
                     server->connections_accepted()));
    server->Stop();  // graceful: in-flight requests finish and respond
    if (want_metrics) {
      std::printf("%s\n", service->metrics().JsonString().c_str());
    }
    server.reset();
    watchdog.reset();
    service.reset();  // drains, then final catalog snapshot
    std::fprintf(stderr, "oocq_serve: drained, shutting down\n");
  }

  trace_session.reset();
  if (!trace_path.empty()) {
    Status written = trace_log.WriteChromeTrace(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: wrote %zu span(s) to %s\n",
                 trace_log.events().size(), trace_path.c_str());
  }
  return rc;
}
