// The oocq query service as a TCP daemon: sessions, admission control,
// deadlines and batching over the line protocol of docs/server.md.
//
//   oocq_serve [--port=N] [--workers=N] [--queue=N] [--threads=N]
//              [--deadline_ms=N] [--trace=FILE] [--metrics] [--smoke]
//
//   --port=N        listen port (default 7733; 0 picks an ephemeral port,
//                   printed on startup)
//   --workers=N     requests executing concurrently (default 4)
//   --queue=N       admitted-but-waiting requests beyond --workers before
//                   the server sheds with UNAVAILABLE (default 64)
//   --threads=N     engine threads *per request* (default 1: concurrency
//                   comes from independent requests, not splitting one)
//   --deadline_ms=N default per-request deadline when a request carries
//                   none (default 0 = unbounded)
//   --trace=FILE    write a Chrome trace of all request spans to FILE on
//                   shutdown (request ids appear as span args)
//   --metrics       print the metrics registry JSON on shutdown
//   --smoke         self-test: start on an ephemeral port, run one
//                   client conversation against it, shut down, exit 0/1
//
// Shutdown: SIGINT/SIGTERM stop the listener, let in-flight requests
// finish and write their responses, then drain the service. The signal
// handler only writes one byte to a self-pipe; all real work happens on
// the main thread.

#include <signal.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "server/service.h"
#include "server/tcp_server.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace oocq;
using namespace oocq::server;

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 1;
  // write() is async-signal-safe; the result is deliberately unused (the
  // pipe full means a byte is already pending, which is just as good).
  ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage() {
  std::fprintf(stderr,
               "usage: oocq_serve [--port=N] [--workers=N] [--queue=N] "
               "[--threads=N] [--deadline_ms=N] [--trace=FILE] [--metrics] "
               "[--smoke] [--help]\n"
               "Line protocol on the socket; see docs/server.md. Send\n"
               "SIGINT for a graceful drain.\n");
  return 2;
}

bool ParseUintFlag(const std::string& flag, const char* prefix,
                   uint64_t* out) {
  size_t len = std::strlen(prefix);
  if (flag.rfind(prefix, 0) != 0) return false;
  *out = std::strtoull(flag.c_str() + len, nullptr, 10);
  return true;
}

/// One scripted client conversation over a real socket — the --smoke
/// self-test and a template for writing clients.
int RunSmoke(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }
  const char* script =
      "PING\n"
      "SESSION NEW\n"
      "schema Smoke {\n"
      "  class Vehicle { }\n"
      "  class Auto under Vehicle { }\n"
      "}\n"
      ".\n"
      "CONTAIN s1 id=smoke-1\n"
      "{ x | x in Auto }\n"
      "{ x | x in Vehicle }\n"
      ".\n"
      "MINIMIZE s1\n"
      "{ x | x in Auto & x in Vehicle }\n"
      ".\n"
      "METRICS\n"
      "QUIT\n";
  if (::send(fd, script, std::strlen(script), 0) < 0) {
    std::perror("send");
    ::close(fd);
    return 1;
  }
  std::string all;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(got));
  }
  ::close(fd);
  std::printf("%s", all.c_str());
  // Six replies (PING, SESSION NEW, CONTAIN, MINIMIZE, METRICS, QUIT),
  // the containment verdict among them.
  bool ok = all.find("session=s1") != std::string::npos &&
            all.find("contained=1") != std::string::npos &&
            all.find("server/requests") != std::string::npos;
  std::fprintf(stderr, "smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7733, workers = 4, queue = 64, threads = 1, deadline_ms = 0;
  std::string trace_path;
  bool want_metrics = false, smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (ParseUintFlag(flag, "--port=", &port) ||
        ParseUintFlag(flag, "--workers=", &workers) ||
        ParseUintFlag(flag, "--queue=", &queue) ||
        ParseUintFlag(flag, "--threads=", &threads) ||
        ParseUintFlag(flag, "--deadline_ms=", &deadline_ms)) {
      continue;
    }
    if (flag.rfind("--trace=", 0) == 0) {
      trace_path = flag.substr(8);
    } else if (flag == "--metrics") {
      want_metrics = true;
    } else if (flag == "--smoke") {
      smoke = true;
    } else if (flag == "--help") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      return Usage();
    }
  }
  if (port > 65535) {
    std::fprintf(stderr, "error: --port out of range\n");
    return Usage();
  }

  TraceLog trace_log;
  std::optional<TraceSession> trace_session;
  if (!trace_path.empty()) trace_session.emplace(&trace_log);

  ServiceOptions service_options;
  service_options.engine.parallel.num_threads = static_cast<uint32_t>(threads);
  service_options.max_in_flight = static_cast<uint32_t>(workers);
  service_options.max_queue_depth = static_cast<uint32_t>(queue);
  service_options.default_deadline_ms = deadline_ms;
  OocqService service(service_options);

  TcpServerOptions server_options;
  server_options.port = smoke ? 0 : static_cast<uint16_t>(port);
  TcpServer server(&service, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "oocq_serve: listening on 127.0.0.1:%u "
               "(workers=%u queue=%u threads=%u deadline_ms=%llu)\n",
               server.port(), service_options.max_in_flight,
               service_options.max_queue_depth,
               service_options.engine.parallel.num_threads,
               static_cast<unsigned long long>(deadline_ms));

  int rc = 0;
  if (smoke) {
    rc = RunSmoke(server.port());
    server.Stop();
  } else {
    if (::pipe(g_signal_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    struct sigaction action{};
    action.sa_handler = OnSignal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr, "oocq_serve: draining %llu connection(s)...\n",
                 static_cast<unsigned long long>(
                     server.connections_accepted()));
    server.Stop();  // graceful: in-flight requests finish and respond
    std::fprintf(stderr, "oocq_serve: drained, shutting down\n");
  }

  if (want_metrics) {
    std::printf("%s\n", service.metrics().JsonString().c_str());
  }
  trace_session.reset();
  if (!trace_path.empty()) {
    Status written = trace_log.WriteChromeTrace(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: wrote %zu span(s) to %s\n",
                 trace_log.events().size(), trace_path.c_str());
  }
  return rc;
}
