// Self-healing client for oocq_serve: forwards stdin to the server one
// request at a time, frames replies by their "." terminator, and — with
// --retries=N — retries retryable failures (UNAVAILABLE,
// DEADLINE_EXCEEDED, RESOURCE_EXHAUSTED, or a dropped connection) with
// exponential backoff and jitter, reconnecting as needed. Sessions and
// named queries live in the *server*, not the connection, so a replayed
// request after reconnect sees the same registry (docs/robustness.md).
//
//   oocq_client [--port=N] [--host=A.B.C.D] [--retries=N] [--backoff_ms=N]
//               < conversation.txt
//
// Example conversation (docs/server.md):
//
//   SESSION NEW
//   schema S { class A { } class A1 under A { } }
//   .
//   CONTAIN s1 deadline_ms=500
//   { x | x in A1 }
//   { x | x in A }
//   .
//   QUIT

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "flag_util.h"

namespace {

/// One protocol request: the command line plus (for payload verbs) its
/// payload lines through the "." terminator, ready to send verbatim.
struct ClientRequest {
  std::string text;
  bool is_quit = false;
};

/// Payload framing mirrors the server's (server/protocol.h): every verb
/// reads lines until "." except the no-payload control verbs.
bool VerbHasPayload(const std::string& verb, const std::string& line) {
  if (verb == "PING" || verb == "QUIT" || verb == "METRICS" ||
      verb == "HEALTH" || verb == "HELLO" || verb == "STATS" ||
      verb == "REPL") {
    return false;
  }
  if (verb == "SESSION") {
    return line.find("DROP") == std::string::npos ||
           line.find("NEW") != std::string::npos;
  }
  return true;
}

std::vector<ClientRequest> ReadConversation(std::istream& in) {
  std::vector<ClientRequest> requests;
  std::string line;
  bool saw_quit = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string verb = line.substr(0, line.find(' '));
    for (char& c : verb) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    ClientRequest request;
    request.text = line + "\n";
    request.is_quit = (verb == "QUIT");
    if (VerbHasPayload(verb, line)) {
      std::string payload_line;
      while (std::getline(in, payload_line)) {
        request.text += payload_line + "\n";
        if (payload_line == ".") break;
      }
    }
    saw_quit = saw_quit || request.is_quit;
    requests.push_back(std::move(request));
    if (saw_quit) break;  // nothing after QUIT would be answered
  }
  if (!saw_quit) {
    ClientRequest quit;
    quit.text = "QUIT\n";
    quit.is_quit = true;
    requests.push_back(std::move(quit));
  }
  return requests;
}

int Connect(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one "."-terminated reply frame; false on connection close.
bool ReadReply(int fd, std::string* buffer, std::string* reply) {
  reply->clear();
  size_t line_start = 0;
  while (true) {
    size_t nl;
    while ((nl = buffer->find('\n', line_start)) != std::string::npos) {
      std::string line = buffer->substr(line_start, nl - line_start);
      line_start = nl + 1;
      if (line == ".") {
        reply->append(buffer->substr(0, line_start));
        buffer->erase(0, line_start);
        return true;
      }
    }
    line_start = buffer->size();
    char chunk[4096];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(got));
  }
}

/// A reply whose status line is `ERR <CODE> ...` with CODE in the
/// retryable taxonomy (support/status.h IsRetryable): the server sheds
/// load, expired a deadline, or refused a budget — a later attempt may
/// succeed where this one did not.
bool IsRetryableReply(const std::string& reply) {
  if (reply.rfind("ERR ", 0) != 0) return false;
  size_t code_start = 4;
  size_t code_end = reply.find_first_of(" \n", code_start);
  std::string code = reply.substr(code_start, code_end - code_start);
  return code == "UNAVAILABLE" || code == "DEADLINE_EXCEEDED" ||
         code == "RESOURCE_EXHAUSTED";
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7733;
  uint64_t retries = 0;
  uint64_t backoff_ms = 50;
  std::string host = "127.0.0.1";
  oocq::examples::FlagSet flags(
      "oocq_client", "< conversation",
      "Forwards stdin to an oocq_serve instance one request at a time and\n"
      "frames replies by their '.' terminator (one reply per request);\n"
      "appends a QUIT if the conversation lacks one. See docs/server.md\n"
      "for the protocol and docs/robustness.md for the retry taxonomy.");
  flags.Uint("port", &port, "N", "server port (default 7733)");
  flags.Str("host", &host, "A.B.C.D", "server IPv4 address (default 127.0.0.1)");
  flags.Uint("retries", &retries, "N",
             "retry a request up to N times on a retryable failure: "
             "ERR UNAVAILABLE / DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED, "
             "a refused connect, or a dropped connection "
             "(default 0 = fail fast)");
  flags.Uint("backoff_ms", &backoff_ms, "N",
             "base retry backoff; doubles per attempt with +/-50% jitter, "
             "capped at 2000ms (default 50)");
  if (flags.Parse(argc, argv) != argc) {
    std::fprintf(stderr, "error: unexpected positional argument\n");
    return flags.UsageError();
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "error: --port out of range\n");
    return flags.UsageError();
  }
  if (backoff_ms == 0) backoff_ms = 1;

  std::vector<ClientRequest> requests = ReadConversation(std::cin);

  std::mt19937_64 rng(std::random_device{}());
  // Exponential backoff with +/-50% jitter, capped: attempt k sleeps
  // around backoff_ms * 2^k, the jitter decorrelating clients that all
  // saw the same shed burst.
  auto backoff = [&](uint64_t attempt) {
    uint64_t base = backoff_ms << std::min<uint64_t>(attempt, 10);
    base = std::min<uint64_t>(base, 2000);
    std::uniform_int_distribution<uint64_t> jitter(base / 2, base + base / 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(jitter(rng)));
  };

  int fd = -1;
  std::string buffer;
  std::string reply;
  uint64_t answered = 0;
  bool all_ok = true;
  for (const ClientRequest& request : requests) {
    bool done = false;
    for (uint64_t attempt = 0; attempt <= retries && !done; ++attempt) {
      if (attempt > 0) {
        std::fprintf(stderr, "oocq_client: retry %llu/%llu\n",
                     static_cast<unsigned long long>(attempt),
                     static_cast<unsigned long long>(retries));
        backoff(attempt - 1);
      }
      if (fd < 0) {
        fd = Connect(host, static_cast<uint16_t>(port));
        if (fd < 0) continue;  // refused: server restarting?
        buffer.clear();
      }
      if (!SendAll(fd, request.text) || !ReadReply(fd, &buffer, &reply)) {
        // Connection died mid-request; replaying on a fresh one is safe —
        // every protocol request is idempotent against the session
        // registry (docs/server.md).
        ::close(fd);
        fd = -1;
        continue;
      }
      if (IsRetryableReply(reply) && attempt < retries) continue;
      std::fputs(reply.c_str(), stdout);
      ++answered;
      done = true;
    }
    if (!done) {
      std::fprintf(stderr, "oocq_client: request failed after %llu attempts\n",
                   static_cast<unsigned long long>(retries + 1));
      all_ok = false;
      break;
    }
    if (request.is_quit) break;
  }
  if (fd >= 0) ::close(fd);
  return (all_ok && answered == requests.size()) ? 0 : 1;
}
