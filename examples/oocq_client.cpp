// Minimal client for oocq_serve: forwards stdin to the server and frames
// replies by their "." terminator, so scripted conversations (and shell
// pipelines) see exactly one reply per request.
//
//   oocq_client [--port=N] [--host=A.B.C.D] < conversation.txt
//
// Example conversation (docs/server.md):
//
//   SESSION NEW
//   schema S { class A { } class A1 under A { } }
//   .
//   CONTAIN s1 deadline_ms=500
//   { x | x in A1 }
//   { x | x in A }
//   .
//   QUIT

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: oocq_client [--port=N] [--host=A.B.C.D] [--help] "
               "< conversation\n"
               "  --port=N        server port (default 7733)\n"
               "  --host=A.B.C.D  server IPv4 address (default 127.0.0.1)\n"
               "  --help          this message\n"
               "Forwards stdin to an oocq_serve instance and frames replies\n"
               "by their '.' terminator (one reply per request); appends a\n"
               "QUIT if the conversation lacks one. See docs/server.md for\n"
               "the protocol.\n");
  return 2;
}

/// Reads one "."-terminated reply frame; false on connection close.
bool ReadReply(int fd, std::string* buffer, std::string* reply) {
  reply->clear();
  size_t line_start = 0;
  while (true) {
    size_t nl;
    while ((nl = buffer->find('\n', line_start)) != std::string::npos) {
      std::string line = buffer->substr(line_start, nl - line_start);
      line_start = nl + 1;
      if (line == ".") {
        reply->append(buffer->substr(0, line_start));
        buffer->erase(0, line_start);
        return true;
      }
    }
    line_start = buffer->size();
    char chunk[4096];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(got));
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7733;
  std::string host = "127.0.0.1";
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--port=", 0) == 0) {
      port = std::strtoull(flag.c_str() + 7, nullptr, 10);
    } else if (flag.rfind("--host=", 0) == 0) {
      host = flag.substr(7);
    } else if (flag == "--help") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
      return Usage();
    }
  }
  if (port == 0 || port > 65535) return Usage();

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "error: bad --host '%s'\n", host.c_str());
    return 2;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("connect");
    return 1;
  }

  // Count the requests stdin contains while sending them, so we know how
  // many reply frames to await: one per command line outside a payload.
  std::string line;
  std::string out;
  uint64_t requests = 0;
  bool in_payload = false;
  bool saw_quit = false;
  while (std::getline(std::cin, line)) {
    out = line + "\n";
    if (::send(fd, out.data(), out.size(), MSG_NOSIGNAL) < 0) {
      std::perror("send");
      return 1;
    }
    if (in_payload) {
      if (line == ".") in_payload = false;
      continue;
    }
    if (line.empty()) continue;
    ++requests;
    std::string verb = line.substr(0, line.find(' '));
    for (char& c : verb) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (verb == "QUIT") saw_quit = true;
    // Payload verbs mirror the server's framing (server/protocol.h):
    // everything except the no-payload control verbs reads until ".".
    if (verb != "PING" && verb != "QUIT" && verb != "METRICS" &&
        !(verb == "SESSION" && line.find("DROP") != std::string::npos &&
          line.find("NEW") == std::string::npos)) {
      in_payload = true;
    }
  }
  if (!saw_quit) {
    const char* quit = "QUIT\n";
    if (::send(fd, quit, std::strlen(quit), MSG_NOSIGNAL) >= 0) ++requests;
  }

  std::string buffer, reply;
  uint64_t received = 0;
  while (received < requests && ReadReply(fd, &buffer, &reply)) {
    std::fputs(reply.c_str(), stdout);
    ++received;
  }
  ::close(fd);
  return received == requests ? 0 : 1;
}
