// The full Example 1.1 pipeline, end to end: schema, a concrete database
// state, the unoptimized query, the minimized query, and a side-by-side
// evaluation showing the search-space reduction that motivates the paper.
//
//   $ ./vehicle_rental

#include <cstdio>

#include "core/optimizer.h"
#include "parser/parser.h"
#include "query/printer.h"
#include "state/evaluation.h"
#include "state/state.h"

namespace {

using namespace oocq;

template <typename T>
T Must(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(value);
}

void MustOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Schema schema = Must(ParseSchema(R"(
schema VehicleRental {
  class Vehicle  { VehId: String; }
  class Auto     under Vehicle { Doors: Int; }
  class Trailer  under Vehicle { Axles: Int; }
  class Truck    under Vehicle { Payload: Real; }
  class Client   { Name: String; VehRented: {Vehicle}; Deposit: Real; }
  class Regular  under Client { }
  class Discount under Client { Rate: Real; VehRented: {Auto}; }
})"));

  // --- Build a small rental database -------------------------------
  State db(&schema);
  ClassId auto_cls = Must(schema.FindClass("Auto"));
  ClassId truck_cls = Must(schema.FindClass("Truck"));
  ClassId trailer_cls = Must(schema.FindClass("Trailer"));
  ClassId regular_cls = Must(schema.FindClass("Regular"));
  ClassId discount_cls = Must(schema.FindClass("Discount"));

  Oid corolla = Must(db.AddObject(auto_cls));
  Oid civic = Must(db.AddObject(auto_cls));
  Oid f150 = Must(db.AddObject(truck_cls));
  Oid flatbed = Must(db.AddObject(trailer_cls));
  MustOk(db.SetAttribute(corolla, "VehId", Value::Ref(db.InternString("COR-1"))));
  MustOk(db.SetAttribute(civic, "VehId", Value::Ref(db.InternString("CIV-7"))));
  MustOk(db.SetAttribute(f150, "VehId", Value::Ref(db.InternString("TRK-3"))));

  Oid alice = Must(db.AddObject(discount_cls));   // Discount: autos only.
  Oid bob = Must(db.AddObject(regular_cls));      // Regular: anything.
  MustOk(db.SetAttribute(alice, "Name", Value::Ref(db.InternString("Alice"))));
  MustOk(db.SetAttribute(alice, "VehRented", Value::Set({corolla})));
  MustOk(db.SetAttribute(bob, "Name", Value::Ref(db.InternString("Bob"))));
  MustOk(db.SetAttribute(bob, "VehRented", Value::Set({f150, flatbed, civic})));
  MustOk(db.Validate());

  std::printf("database: %zu objects (3 autos/trucks/trailers, 2 clients)\n\n",
              db.num_objects());

  // --- The user's query --------------------------------------------
  const char* text =
      "{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }";
  ConjunctiveQuery query = Must(ParseQuery(schema, text));
  std::printf("query:     %s\n", text);

  // --- Optimize ------------------------------------------------------
  QueryOptimizer optimizer(schema);
  OptimizeReport report = Must(optimizer.Optimize(query));
  std::printf("optimized: %s\n\n",
              UnionQueryToString(schema, report.optimized).c_str());
  std::printf("%s\n", report.Summary(schema).c_str());

  // --- Evaluate both and compare the work done -----------------------
  EvalStats original_stats;
  std::vector<Oid> original = Must(Evaluate(db, query, {}, &original_stats));
  EvalStats optimized_stats;
  std::vector<Oid> optimized =
      Must(EvaluateUnion(db, report.optimized, {}, &optimized_stats));

  std::printf("answers (original):  ");
  for (Oid oid : original) std::printf("%s ", db.DebugString(oid).c_str());
  std::printf("\nanswers (optimized): ");
  for (Oid oid : optimized) std::printf("%s ", db.DebugString(oid).c_str());
  std::printf("\n\nsearch space: %llu candidate objects -> %llu\n",
              static_cast<unsigned long long>(original_stats.candidate_pool),
              static_cast<unsigned long long>(optimized_stats.candidate_pool));
  std::printf("assignments tried: %llu -> %llu\n",
              static_cast<unsigned long long>(original_stats.assignments_tried),
              static_cast<unsigned long long>(
                  optimized_stats.assignments_tried));

  return original == optimized ? 0 : 1;
}
