// An interactive shell over the library: load a schema and a state, then
// issue queries and meta-commands. Reads stdin line by line, so it also
// works in pipelines:
//
//   $ printf 'schema rental.oocq\nstate db.oocq\n{ x | x in Auto }\n' | oocq_repl
//
// Commands:
//   schema FILE              load a schema (clears the state)
//   state FILE               load a state DSL file
//   minimize QUERY           run the optimizer pipeline
//   contain Q1 ; Q2          containment of two terminal queries
//   explain Q1 ; Q2          narrated containment
//   sat QUERY                satisfiability (general queries expanded)
//   trace FILE | trace off   record engine spans; 'off' (or quit) writes
//                            the Chrome tracing JSON to FILE
//   metrics on|off|show      collect engine metrics; 'show'/'off' print
//                            the registry as JSON
//   show schema | state      print the loaded artifacts
//   QUERY                    evaluate on the loaded state (default)
//   help, quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "core/explain.h"
#include "core/optimizer.h"
#include "core/satisfiability.h"
#include "parser/parser.h"
#include "parser/state_parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "schema/schema_printer.h"
#include "state/evaluation.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace oocq;

struct Session {
  std::optional<Schema> schema;
  std::optional<State> state;

  // Observability sinks; active between 'trace FILE'/'metrics on' and the
  // matching 'off' (or quit). The log/registry outlive their RAII
  // installers, so destruction order inside the struct is managed by
  // StopTrace/StopMetrics rather than member order.
  std::string trace_path;
  std::unique_ptr<TraceLog> trace_log;
  std::unique_ptr<TraceSession> trace_session;
  std::unique_ptr<MetricsRegistry> registry;
  std::unique_ptr<MetricsScope> metrics_scope;

  /// Engine options for the next command: phase table in Summary() while
  /// either sink is live.
  MinimizationOptions Options() const {
    MinimizationOptions options;
    options.observability.metrics =
        metrics_scope != nullptr || trace_session != nullptr;
    return options;
  }
};

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void Report(const Status& status) {
  std::printf("error: %s\n", status.ToString().c_str());
}

void StopTrace(Session& session) {
  if (session.trace_session == nullptr) return;
  session.trace_session.reset();  // finalizes the log
  Status written = session.trace_log->WriteChromeTrace(session.trace_path);
  if (written.ok()) {
    std::printf("trace: wrote %zu span(s) to %s\n",
                session.trace_log->events().size(),
                session.trace_path.c_str());
  } else {
    Report(written);
  }
  session.trace_log.reset();
  session.trace_path.clear();
}

void StopMetrics(Session& session, bool print) {
  if (session.metrics_scope == nullptr) return;
  session.metrics_scope.reset();
  if (print) std::printf("%s\n", session.registry->JsonString().c_str());
  session.registry.reset();
}

void HandleEvaluate(Session& session, const std::string& text) {
  if (!session.state.has_value()) {
    std::printf("no state loaded; use: state FILE\n");
    return;
  }
  StatusOr<ConjunctiveQuery> query = ParseQuery(*session.schema, text);
  if (!query.ok()) return Report(query.status());
  StatusOr<ConjunctiveQuery> well_formed =
      NormalizeToWellFormed(*session.schema, *query);
  if (!well_formed.ok()) return Report(well_formed.status());
  StatusOr<std::vector<Oid>> answers = Evaluate(*session.state, *well_formed);
  if (!answers.ok()) return Report(answers.status());
  std::printf("%zu answer(s):", answers->size());
  for (Oid oid : *answers) {
    std::printf(" %s", session.state->DebugString(oid).c_str());
  }
  std::printf("\n");
}

void HandlePair(Session& session, const std::string& args, bool explain) {
  size_t split = args.find(';');
  if (split == std::string::npos) {
    std::printf("usage: %s Q1 ; Q2\n", explain ? "explain" : "contain");
    return;
  }
  StatusOr<ConjunctiveQuery> q1 =
      ParseQuery(*session.schema, Trim(args.substr(0, split)));
  if (!q1.ok()) return Report(q1.status());
  StatusOr<ConjunctiveQuery> q2 =
      ParseQuery(*session.schema, Trim(args.substr(split + 1)));
  if (!q2.ok()) return Report(q2.status());
  if (explain) {
    StatusOr<ContainmentExplanation> result =
        ExplainContainment(*session.schema, *q1, *q2);
    if (!result.ok()) return Report(result.status());
    std::printf("%s", result->text.c_str());
  } else {
    QueryOptimizer optimizer(*session.schema, session.Options());
    StatusOr<bool> result = optimizer.IsContained(*q1, *q2);
    if (!result.ok()) return Report(result.status());
    std::printf("%s\n", *result ? "CONTAINED" : "NOT contained");
  }
}

void HandleLine(Session& session, const std::string& raw) {
  std::string line = Trim(raw);
  if (line.empty() || line[0] == '#') return;

  auto starts_with = [&line](const char* prefix) {
    return line.rfind(prefix, 0) == 0;
  };
  auto rest_after = [&line](size_t n) { return Trim(line.substr(n)); };

  if (line == "help") {
    std::printf(
        "schema FILE | state FILE | minimize Q | contain Q1 ; Q2 |\n"
        "explain Q1 ; Q2 | sat Q | trace FILE|off | metrics on|off|show |\n"
        "show schema|state | QUERY | quit\n");
    return;
  }
  if (starts_with("trace ")) {
    std::string target = rest_after(6);
    if (target == "off") {
      if (session.trace_session == nullptr) {
        std::printf("trace: not recording\n");
      } else {
        StopTrace(session);
      }
      return;
    }
    if (session.trace_session != nullptr) {
      std::printf("trace: already recording to %s; 'trace off' first\n",
                  session.trace_path.c_str());
      return;
    }
    session.trace_path = target;
    session.trace_log = std::make_unique<TraceLog>();
    session.trace_session = std::make_unique<TraceSession>(
        session.trace_log.get());
    std::printf("trace: recording; 'trace off' writes %s\n", target.c_str());
    return;
  }
  if (starts_with("metrics ")) {
    std::string mode = rest_after(8);
    if (mode == "on") {
      if (session.metrics_scope != nullptr) {
        std::printf("metrics: already collecting\n");
        return;
      }
      session.registry = std::make_unique<MetricsRegistry>();
      session.metrics_scope =
          std::make_unique<MetricsScope>(session.registry.get());
      std::printf("metrics: collecting\n");
    } else if (mode == "show") {
      if (session.metrics_scope == nullptr) {
        std::printf("metrics: not collecting; 'metrics on' first\n");
        return;
      }
      std::printf("%s\n", session.registry->JsonString().c_str());
    } else if (mode == "off") {
      if (session.metrics_scope == nullptr) {
        std::printf("metrics: not collecting\n");
        return;
      }
      StopMetrics(session, /*print=*/true);
    } else {
      std::printf("usage: metrics on|off|show\n");
    }
    return;
  }
  if (starts_with("schema ")) {
    StatusOr<std::string> text = ReadFile(rest_after(7));
    if (!text.ok()) return Report(text.status());
    StatusOr<Schema> schema = ParseSchema(*text);
    if (!schema.ok()) return Report(schema.status());
    session.schema = *std::move(schema);
    session.state.reset();
    std::printf("schema loaded: %zu classes\n",
                session.schema->num_classes() - kNumBuiltinClasses);
    return;
  }
  if (!session.schema.has_value()) {
    std::printf("no schema loaded; use: schema FILE\n");
    return;
  }
  if (starts_with("state ")) {
    StatusOr<std::string> text = ReadFile(rest_after(6));
    if (!text.ok()) return Report(text.status());
    StatusOr<State> state = ParseState(&*session.schema, *text);
    if (!state.ok()) return Report(state.status());
    session.state = *std::move(state);
    std::printf("state loaded: %zu objects\n", session.state->num_objects());
    return;
  }
  if (starts_with("minimize ")) {
    QueryOptimizer optimizer(*session.schema, session.Options());
    StatusOr<OptimizeReport> report = optimizer.OptimizeText(rest_after(9));
    if (!report.ok()) return Report(report.status());
    std::printf("%s", report->Summary(*session.schema).c_str());
    return;
  }
  if (starts_with("contain ")) return HandlePair(session, rest_after(8), false);
  if (starts_with("explain ")) return HandlePair(session, rest_after(8), true);
  if (starts_with("sat ")) {
    StatusOr<ConjunctiveQuery> query =
        ParseQuery(*session.schema, rest_after(4));
    if (!query.ok()) return Report(query.status());
    StatusOr<ConjunctiveQuery> well_formed =
        NormalizeToWellFormed(*session.schema, *query);
    if (!well_formed.ok()) return Report(well_formed.status());
    StatusOr<bool> sat = CheckSatisfiableGeneral(*session.schema, *well_formed);
    if (!sat.ok()) return Report(sat.status());
    std::printf("%s\n", *sat ? "SATISFIABLE" : "UNSATISFIABLE");
    return;
  }
  if (line == "show schema") {
    std::printf("%s", SchemaToString(*session.schema).c_str());
    return;
  }
  if (line == "show state") {
    if (!session.state.has_value()) {
      std::printf("no state loaded\n");
      return;
    }
    std::printf("%s", StateToString(*session.state).c_str());
    return;
  }
  if (line == "quit" || line == "exit") {
    // Flush pending sinks before exiting so a trace is never lost.
    StopTrace(session);
    StopMetrics(session, /*print=*/false);
    std::exit(0);
  }
  // Default: treat the line as a query to evaluate.
  HandleEvaluate(session, line);
}

}  // namespace

int main() {
  Session session;
  std::string line;
  bool tty = true;
  if (tty) std::printf("oocq> ");
  while (std::getline(std::cin, line)) {
    HandleLine(session, line);
    if (tty) std::printf("oocq> ");
  }
  std::printf("\n");
  // EOF without 'quit': flush sinks the same way.
  StopTrace(session);
  StopMetrics(session, /*print=*/false);
  return 0;
}
