// A role-aware consistent-hash session router for a fleet of oocq_serve
// backends (docs/replication.md#router): accepts ordinary protocol
// connections, peeks the first command line to learn which session the
// client is talking about, and splices the connection to the backend
// that owns that session key on the hash ring (replicate/ring.h).
//
//   oocq_route --backends=HOST:PORT[,HOST:PORT...] [--port=N]
//              [--vnodes=N] [--health_interval_s=N]
//              [--read_from_followers] [--max_follower_lag=N]
//
// Routing is per-connection: the first session-bearing verb (CONTAIN s1,
// DEFINE s1 q1, SESSION DROP s1, ...) pins the connection to
// ring.Lookup(session), and every later command on the connection rides
// the same splice. A connection whose first verb carries no session
// (PING, SESSION NEW, HELLO) is routed by round-robin — create sessions
// through the router and stay on the connection, or ask a specific
// backend directly.
//
// A background prober sends HEALTH to every backend each
// --health_interval_s and parses role=/readonly=/term= off the reply, so
// the router knows who may accept writes — a read-only follower is
// healthy but it is *not* a mutation target. Two fleet shapes fall out
// of the same probe sweep:
//
//  - sharded (every backend a term-1 primary, no followers): the ring
//    spreads sessions across all reachable backends, as before;
//  - replicated (followers present, or any term > 1): mutations route
//    only to the highest-term primary; dueling or stale primaries are
//    actively fenced with REPL DEMOTE (replicate/fence.h); and with
//    --read_from_followers, connections whose first verb is read-only
//    (CONTAIN/EQUIV/UCONTAIN/MINIMIZE/SAT/EVAL/EXPLAIN) round-robin
//    across caught-up followers.
//
// A splice that sees the backend answer `ERR FAILED_PRECONDITION fenced
// term=N` drops that reply and closes the connection instead of
// forwarding it: the retrying client reconnects, the router re-probes,
// and the next attempt lands on the new primary.

#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flag_util.h"
#include "replicate/fence.h"
#include "replicate/peer.h"
#include "replicate/ring.h"
#include "server/protocol.h"
#include "support/log.h"

namespace {

using namespace oocq;

/// Dials a backend for a client splice (no receive timeout: the splice
/// is poll()-driven). Routed through replicate::DialPeer so the
/// `net/partition` failpoint black-holes router→backend traffic too.
int DialBackend(const std::string& host_port) {
  std::string host;
  uint16_t port = 0;
  if (!replicate::SplitHostPort(host_port, &host, &port)) return -1;
  return replicate::DialPeer(host, port, /*rcv_timeout_ms=*/0);
}

/// The session key of a parsed command line, or "" when the verb does
/// not name a session. Mirrors the server's argument conventions
/// (server/protocol.cc): session-bearing verbs put the session id first;
/// SESSION DROP carries it second.
std::string SessionKeyOf(const server::CommandLine& command) {
  if (command.verb == "SESSION") {
    if (command.args.size() >= 2 && command.args[0] == "DROP") {
      return command.args[1];
    }
    return "";
  }
  static const char* kSessionVerbs[] = {"CONTAIN", "EQUIV", "UCONTAIN",
                                        "MINIMIZE", "SAT", "EVAL", "EXPLAIN",
                                        "BATCH",    "DEFINE", "STATE"};
  for (const char* verb : kSessionVerbs) {
    if (command.verb == verb && !command.args.empty()) return command.args[0];
  }
  return "";
}

/// Verbs that never mutate the catalog — safe to serve from a caught-up
/// follower (verdicts are deterministic functions of replayed state).
bool IsReadOnlyVerb(const std::string& verb) {
  static const char* kReadOnlyVerbs[] = {"CONTAIN", "EQUIV",  "UCONTAIN",
                                         "MINIMIZE", "SAT",   "EVAL",
                                         "EXPLAIN"};
  for (const char* candidate : kReadOnlyVerbs) {
    if (verb == candidate) return true;
  }
  return false;
}

/// The ring plus role/term state from the last probe sweep.
class Router {
 public:
  Router(const std::vector<std::string>& backends, uint32_t vnodes,
         bool read_from_followers, uint64_t max_follower_lag)
      : all_backends_(backends),
        read_from_followers_(read_from_followers),
        max_follower_lag_(max_follower_lag),
        ring_(vnodes) {
    // Until the first sweep reports, assume every backend is a writable
    // primary — the pre-replication shape — so cold-start routing works
    // even with probing disabled.
    for (const std::string& b : backends) ring_.AddNode(b);
  }

  /// The mutation target owning `key`; round-robin across ring nodes for
  /// keyless connections. With `read_only` and --read_from_followers,
  /// prefers the caught-up follower pool.
  std::string Pick(const std::string& key, bool read_only) {
    std::lock_guard<std::mutex> lock(mu_);
    if (read_only && read_from_followers_ && !read_pool_.empty()) {
      return read_pool_[next_read_++ % read_pool_.size()];
    }
    if (!key.empty()) return ring_.Lookup(key);
    std::vector<std::string> nodes = ring_.Nodes();
    if (nodes.empty()) return "";
    return nodes[next_round_robin_++ % nodes.size()];
  }

  /// Applies one probe sweep: ring membership, read pool, and the
  /// fencing decision. Returns the stale/tied primaries to demote
  /// (fencing itself happens outside the lock).
  struct SweepPlan {
    std::string winner;
    uint64_t winner_term = 0;
    std::vector<replicate::PeerStatus> to_fence;
  };
  SweepPlan ApplySweep(const std::vector<replicate::PeerStatus>& peers) {
    SweepPlan plan;
    std::lock_guard<std::mutex> lock(mu_);
    bool replicated = false;
    for (const replicate::PeerStatus& peer : peers) {
      LogTransitionLocked(peer);
      if (!peer.reachable) continue;
      if (peer.role == "follower" || peer.fenced || peer.term > 1) {
        replicated = true;
      }
    }
    std::vector<std::string> writers;
    plan.winner = replicate::PickWinner(peers);
    if (replicated && !plan.winner.empty()) {
      // Replicated fleet: exactly one mutation target — the highest-term
      // primary — and every other writable primary is stale or a dueling
      // loser to be fenced.
      for (const replicate::PeerStatus& peer : peers) {
        if (peer.address == plan.winner) plan.winner_term = peer.term;
        if (peer.reachable && !peer.readonly && peer.address != plan.winner) {
          plan.to_fence.push_back(peer);
        }
      }
      writers.push_back(plan.winner);
    } else {
      // Sharded fleet (or nothing writable yet): spread sessions across
      // every reachable writable backend, the pre-replication behavior.
      plan.winner.clear();
      for (const replicate::PeerStatus& peer : peers) {
        if (peer.reachable && !peer.readonly) writers.push_back(peer.address);
      }
    }
    SetRingLocked(writers);
    read_pool_.clear();
    if (read_from_followers_) {
      for (const replicate::PeerStatus& peer : peers) {
        if (peer.reachable && peer.role == "follower" && !peer.fenced &&
            peer.repl_connected && peer.lag_records <= max_follower_lag_) {
          read_pool_.push_back(peer.address);
        }
      }
    }
    return plan;
  }

  /// Drops an unreachable backend mid-interval (a splice dial failed).
  void MarkDead(const std::string& backend) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.Contains(backend)) {
      ring_.RemoveNode(backend);
      OOCQ_LOG(Warn, "route").Msg("backend out of ring").With("backend",
                                                              backend);
    }
  }

  const std::vector<std::string>& all_backends() const {
    return all_backends_;
  }

  /// Asks the prober to run a sweep now (a splice saw a fenced reply).
  void RequestProbe() {
    {
      std::lock_guard<std::mutex> lock(probe_mu_);
      probe_requested_ = true;
    }
    probe_cv_.notify_one();
  }
  bool WaitProbeInterval(uint64_t interval_ms) {
    std::unique_lock<std::mutex> lock(probe_mu_);
    probe_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                       [this] { return probe_requested_ || stopping_; });
    bool requested = probe_requested_;
    probe_requested_ = false;
    return requested || !stopping_;
  }
  void StopProber() {
    {
      std::lock_guard<std::mutex> lock(probe_mu_);
      stopping_ = true;
    }
    probe_cv_.notify_all();
  }
  bool stopping() {
    std::lock_guard<std::mutex> lock(probe_mu_);
    return stopping_;
  }

 private:
  void SetRingLocked(const std::vector<std::string>& writers) {
    for (const std::string& node : ring_.Nodes()) {
      bool keep = false;
      for (const std::string& writer : writers) {
        if (writer == node) keep = true;
      }
      if (!keep) {
        ring_.RemoveNode(node);
        OOCQ_LOG(Warn, "route").Msg("backend out of ring").With("backend",
                                                                node);
      }
    }
    for (const std::string& writer : writers) {
      if (!ring_.Contains(writer)) {
        ring_.AddNode(writer);
        OOCQ_LOG(Info, "route").Msg("backend into ring").With("backend",
                                                              writer);
      }
    }
  }

  void LogTransitionLocked(const replicate::PeerStatus& peer) {
    auto it = last_seen_.find(peer.address);
    const std::string role = peer.reachable ? peer.role : "unreachable";
    if (it != last_seen_.end() &&
        (it->second.first != role || it->second.second != peer.term)) {
      OOCQ_LOG(Info, "route")
          .Msg("backend role transition")
          .With("backend", peer.address)
          .With("from_role", it->second.first)
          .With("from_term", it->second.second)
          .With("to_role", role)
          .With("to_term", peer.term);
    }
    last_seen_[peer.address] = {role, peer.term};
  }

  const std::vector<std::string> all_backends_;
  const bool read_from_followers_;
  const uint64_t max_follower_lag_;
  std::mutex mu_;
  replicate::ConsistentHashRing ring_;
  std::vector<std::string> read_pool_;
  std::map<std::string, std::pair<std::string, uint64_t>> last_seen_;
  size_t next_round_robin_ = 0;
  size_t next_read_ = 0;

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_requested_ = false;
  bool stopping_ = false;
};

/// Copies bytes both ways until either side closes or errors. Backend
/// traffic is scanned for fenced refusals: instead of forwarding a
/// `fenced term=N` error to the client, the splice closes both sides —
/// retrying clients treat a dropped connection as retryable (unlike
/// FAILED_PRECONDITION) and their reconnect re-resolves through the
/// refreshed ring.
void Splice(int client_fd, int backend_fd, Router* router) {
  pollfd fds[2];
  fds[0] = {client_fd, POLLIN, 0};
  fds[1] = {backend_fd, POLLIN, 0};
  char buf[16 * 1024];
  while (true) {
    fds[0].revents = fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < 2; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      ssize_t n = ::recv(fds[i].fd, buf, sizeof(buf), 0);
      if (n <= 0) return;  // EOF or error on either side ends the splice
      if (i == 1 &&
          std::string(buf, static_cast<size_t>(n))
                  .find("ERR FAILED_PRECONDITION fenced") !=
              std::string::npos) {
        OOCQ_LOG(Warn, "route")
            .Msg("backend fenced mid-splice; dropping connection to force "
                 "re-resolve");
        router->RequestProbe();
        return;
      }
      int out = (i == 0) ? backend_fd : client_fd;
      ssize_t sent = 0;
      while (sent < n) {
        ssize_t w = ::send(out, buf + sent, static_cast<size_t>(n - sent),
                           MSG_NOSIGNAL);
        if (w < 0) {
          if (errno == EINTR) continue;
          return;
        }
        sent += w;
      }
    }
  }
}

/// One client connection: peek the first line, pick a backend, replay the
/// peeked bytes, then splice until either side closes.
void ServeClient(int client_fd, Router* router) {
  std::string peeked;
  char c;
  // Read byte-wise up to the first newline — no look-ahead is swallowed,
  // so the backend sees the byte stream exactly as the client sent it.
  while (peeked.size() < server::kMaxLineBytes) {
    ssize_t n = ::recv(client_fd, &c, 1, 0);
    if (n <= 0) {
      ::close(client_fd);
      return;
    }
    peeked.push_back(c);
    if (c == '\n') break;
  }
  server::CommandLine first =
      server::ParseCommandLine(peeked.substr(0, peeked.size() - 1));
  std::string key = SessionKeyOf(first);
  std::string backend = router->Pick(key, IsReadOnlyVerb(first.verb));
  int backend_fd = backend.empty() ? -1 : DialBackend(backend);
  if (backend_fd < 0) {
    const char* err = "ERR UNAVAILABLE no live backend\n.\n";
    (void)::send(client_fd, err, std::strlen(err), MSG_NOSIGNAL);
    ::close(client_fd);
    if (!backend.empty()) {
      router->MarkDead(backend);
      router->RequestProbe();
    }
    return;
  }
  OOCQ_LOG(Debug, "route")
      .Msg("routed connection")
      .With("verb", first.verb)
      .With("session", key.empty() ? "-" : key)
      .With("backend", backend);
  ssize_t sent = ::send(backend_fd, peeked.data(), peeked.size(), MSG_NOSIGNAL);
  if (sent == static_cast<ssize_t>(peeked.size())) {
    Splice(client_fd, backend_fd, router);
  }
  ::close(backend_fd);
  ::close(client_fd);
}

/// One prober sweep: HEALTH every backend, update routing state, fence
/// stale/dueling primaries.
void ProbeSweep(Router* router) {
  std::vector<replicate::PeerStatus> peers;
  for (const std::string& backend : router->all_backends()) {
    peers.push_back(replicate::ProbePeer(backend, /*timeout_ms=*/2000));
  }
  Router::SweepPlan plan = router->ApplySweep(peers);
  if (!plan.to_fence.empty()) {
    (void)replicate::FenceStalePrimaries(peers, plan.winner, plan.winner_term,
                                         /*timeout_ms=*/2000);
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7744, vnodes = 128, health_interval_s = 2;
  uint64_t max_follower_lag = 64;
  bool read_from_followers = false;
  std::string backends_flag;
  oocq::examples::FlagSet flags(
      "oocq_route", "",
      "Role-aware consistent-hash session router; see "
      "docs/replication.md#router.");
  flags.Uint("port", &port, "N",
             "listen port (default 7744; 0 = ephemeral, printed on startup)");
  flags.Str("backends", &backends_flag, "HOST:PORT,...",
            "comma-separated backend list (required)");
  flags.Uint("vnodes", &vnodes, "N",
             "ring points per backend (default 128)");
  flags.Uint("health_interval_s", &health_interval_s, "N",
             "backend HEALTH probe cadence (default 2; 0 disables probing)");
  flags.Bool("read_from_followers", &read_from_followers,
             "spread connections whose first verb is read-only across "
             "caught-up followers");
  flags.Uint("max_follower_lag", &max_follower_lag, "N",
             "followers lagging more than N records leave the read pool "
             "(default 64)");
  if (flags.Parse(argc, argv) != argc) {
    std::fprintf(stderr, "error: unexpected positional argument\n");
    return flags.UsageError();
  }
  std::vector<std::string> backends;
  size_t start = 0;
  while (start <= backends_flag.size() && !backends_flag.empty()) {
    size_t comma = backends_flag.find(',', start);
    size_t end = comma == std::string::npos ? backends_flag.size() : comma;
    if (end > start) backends.push_back(backends_flag.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (backends.empty() || port > 65535) {
    std::fprintf(stderr, "error: --backends=HOST:PORT[,HOST:PORT...] "
                         "is required\n");
    return flags.UsageError();
  }
  ::signal(SIGPIPE, SIG_IGN);

  Router router(backends, static_cast<uint32_t>(vnodes), read_from_followers,
                max_follower_lag);

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 128) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  OOCQ_LOG(Info, "route")
      .Msg("routing on 127.0.0.1")
      .With("port", static_cast<uint64_t>(ntohs(addr.sin_port)))
      .With("backends", backends_flag)
      .With("vnodes", vnodes)
      .With("read_from_followers",
            static_cast<uint64_t>(read_from_followers ? 1 : 0));

  std::thread prober;
  if (health_interval_s > 0) {
    prober = std::thread([&] {
      while (!router.stopping()) {
        ProbeSweep(&router);
        router.WaitProbeInterval(health_interval_s * 1000);
      }
    });
  }

  while (true) {
    int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::thread(ServeClient, client_fd, &router).detach();
  }
  router.StopProber();
  if (prober.joinable()) prober.join();
  ::close(listen_fd);
  return 0;
}
