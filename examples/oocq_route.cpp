// A consistent-hash session router for a fleet of oocq_serve primaries
// (docs/replication.md#router): accepts ordinary protocol connections,
// peeks the first command line to learn which session the client is
// talking about, and splices the connection to the backend that owns
// that session key on the hash ring (replicate/ring.h).
//
//   oocq_route --backends=HOST:PORT[,HOST:PORT...] [--port=N]
//              [--vnodes=N] [--health_interval_s=N]
//
// Routing is per-connection: the first session-bearing verb (CONTAIN s1,
// DEFINE s1 q1, SESSION DROP s1, ...) pins the connection to
// ring.Lookup(session), and every later command on the connection rides
// the same splice. A connection whose first verb carries no session
// (PING, SESSION NEW, HELLO) is routed by round-robin — create sessions
// through the router and stay on the connection, or ask a specific
// backend directly.
//
// A background prober PINGs every backend each --health_interval_s and
// removes unreachable nodes from the ring (re-adding them when they
// recover), so new connections skate around a dead primary. Established
// splices to a dying backend just see EOF and close — clients retry and
// land on a live node.

#include <netdb.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flag_util.h"
#include "replicate/ring.h"
#include "server/protocol.h"
#include "support/log.h"

namespace {

using namespace oocq;

int DialBackend(const std::string& host_port) {
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos) return -1;
  std::string host = host_port.substr(0, colon);
  uint16_t port = static_cast<uint16_t>(
      std::strtoul(host_port.c_str() + colon + 1, nullptr, 10));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// The session key of a parsed command line, or "" when the verb does
/// not name a session. Mirrors the server's argument conventions
/// (server/protocol.cc): session-bearing verbs put the session id first;
/// SESSION DROP carries it second.
std::string SessionKeyOf(const server::CommandLine& command) {
  if (command.verb == "SESSION") {
    if (command.args.size() >= 2 && command.args[0] == "DROP") {
      return command.args[1];
    }
    return "";
  }
  static const char* kSessionVerbs[] = {"CONTAIN", "EQUIV", "UCONTAIN",
                                        "MINIMIZE", "SAT", "EVAL", "EXPLAIN",
                                        "BATCH",    "DEFINE", "STATE"};
  for (const char* verb : kSessionVerbs) {
    if (command.verb == verb && !command.args.empty()) return command.args[0];
  }
  return "";
}

/// The ring plus the mutex replicate/ring.h tells callers to bring.
class Router {
 public:
  Router(const std::vector<std::string>& backends, uint32_t vnodes)
      : all_backends_(backends), ring_(vnodes) {
    for (const std::string& b : backends) ring_.AddNode(b);
  }

  /// The backend owning `key`; round-robin across live nodes for keyless
  /// connections.
  std::string Pick(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!key.empty()) return ring_.Lookup(key);
    std::vector<std::string> nodes = ring_.Nodes();
    if (nodes.empty()) return "";
    return nodes[next_round_robin_++ % nodes.size()];
  }

  void SetAlive(const std::string& backend, bool alive) {
    std::lock_guard<std::mutex> lock(mu_);
    bool present = ring_.Contains(backend);
    if (alive && !present) {
      ring_.AddNode(backend);
      OOCQ_LOG(Info, "route").Msg("backend back in ring").With("backend",
                                                              backend);
    } else if (!alive && present) {
      ring_.RemoveNode(backend);
      OOCQ_LOG(Warn, "route").Msg("backend out of ring").With("backend",
                                                              backend);
    }
  }

  const std::vector<std::string>& all_backends() const {
    return all_backends_;
  }

 private:
  const std::vector<std::string> all_backends_;
  std::mutex mu_;
  replicate::ConsistentHashRing ring_;
  size_t next_round_robin_ = 0;
};

/// One PING round trip; true when the backend answered anything at all.
bool ProbeBackend(const std::string& backend) {
  int fd = DialBackend(backend);
  if (fd < 0) return false;
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const char* ping = "PING\nQUIT\n";
  bool ok = ::send(fd, ping, std::strlen(ping), MSG_NOSIGNAL) ==
            static_cast<ssize_t>(std::strlen(ping));
  if (ok) {
    char buf[64];
    ok = ::recv(fd, buf, sizeof(buf), 0) > 0;
  }
  ::close(fd);
  return ok;
}

/// Copies bytes both ways until either side closes or errors.
void Splice(int client_fd, int backend_fd) {
  pollfd fds[2];
  fds[0] = {client_fd, POLLIN, 0};
  fds[1] = {backend_fd, POLLIN, 0};
  char buf[16 * 1024];
  while (true) {
    fds[0].revents = fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < 2; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      ssize_t n = ::recv(fds[i].fd, buf, sizeof(buf), 0);
      if (n <= 0) return;  // EOF or error on either side ends the splice
      int out = (i == 0) ? backend_fd : client_fd;
      ssize_t sent = 0;
      while (sent < n) {
        ssize_t w = ::send(out, buf + sent, static_cast<size_t>(n - sent),
                           MSG_NOSIGNAL);
        if (w < 0) {
          if (errno == EINTR) continue;
          return;
        }
        sent += w;
      }
    }
  }
}

/// One client connection: peek the first line, pick a backend, replay the
/// peeked bytes, then splice until either side closes.
void ServeClient(int client_fd, Router* router) {
  std::string peeked;
  char c;
  // Read byte-wise up to the first newline — no look-ahead is swallowed,
  // so the backend sees the byte stream exactly as the client sent it.
  while (peeked.size() < server::kMaxLineBytes) {
    ssize_t n = ::recv(client_fd, &c, 1, 0);
    if (n <= 0) {
      ::close(client_fd);
      return;
    }
    peeked.push_back(c);
    if (c == '\n') break;
  }
  server::CommandLine first =
      server::ParseCommandLine(peeked.substr(0, peeked.size() - 1));
  std::string key = SessionKeyOf(first);
  std::string backend = router->Pick(key);
  int backend_fd = backend.empty() ? -1 : DialBackend(backend);
  if (backend_fd < 0) {
    const char* err = "ERR UNAVAILABLE no live backend\n.\n";
    (void)::send(client_fd, err, std::strlen(err), MSG_NOSIGNAL);
    ::close(client_fd);
    if (!backend.empty()) router->SetAlive(backend, false);
    return;
  }
  OOCQ_LOG(Debug, "route")
      .Msg("routed connection")
      .With("verb", first.verb)
      .With("session", key.empty() ? "-" : key)
      .With("backend", backend);
  ssize_t sent = ::send(backend_fd, peeked.data(), peeked.size(), MSG_NOSIGNAL);
  if (sent == static_cast<ssize_t>(peeked.size())) {
    Splice(client_fd, backend_fd);
  }
  ::close(backend_fd);
  ::close(client_fd);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t port = 7744, vnodes = 128, health_interval_s = 2;
  std::string backends_flag;
  oocq::examples::FlagSet flags(
      "oocq_route", "",
      "Consistent-hash session router; see docs/replication.md#router.");
  flags.Uint("port", &port, "N",
             "listen port (default 7744; 0 = ephemeral, printed on startup)");
  flags.Str("backends", &backends_flag, "HOST:PORT,...",
            "comma-separated primary list (required)");
  flags.Uint("vnodes", &vnodes, "N",
             "ring points per backend (default 128)");
  flags.Uint("health_interval_s", &health_interval_s, "N",
             "backend PING cadence (default 2; 0 disables probing)");
  if (flags.Parse(argc, argv) != argc) {
    std::fprintf(stderr, "error: unexpected positional argument\n");
    return flags.UsageError();
  }
  std::vector<std::string> backends;
  size_t start = 0;
  while (start <= backends_flag.size() && !backends_flag.empty()) {
    size_t comma = backends_flag.find(',', start);
    size_t end = comma == std::string::npos ? backends_flag.size() : comma;
    if (end > start) backends.push_back(backends_flag.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (backends.empty() || port > 65535) {
    std::fprintf(stderr, "error: --backends=HOST:PORT[,HOST:PORT...] "
                         "is required\n");
    return flags.UsageError();
  }
  ::signal(SIGPIPE, SIG_IGN);

  Router router(backends, static_cast<uint32_t>(vnodes));

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("socket");
    return 1;
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 128) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  OOCQ_LOG(Info, "route")
      .Msg("routing on 127.0.0.1")
      .With("port", static_cast<uint64_t>(ntohs(addr.sin_port)))
      .With("backends", backends_flag)
      .With("vnodes", vnodes);

  std::thread prober;
  std::atomic<bool> stop{false};
  if (health_interval_s > 0) {
    prober = std::thread([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (const std::string& backend : router.all_backends()) {
          router.SetAlive(backend, ProbeBackend(backend));
        }
        for (uint64_t slept_ms = 0;
             slept_ms < health_interval_s * 1000 &&
             !stop.load(std::memory_order_acquire);
             slept_ms += 100) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
  }

  while (true) {
    int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    std::thread(ServeClient, client_fd, &router).detach();
  }
  stop.store(true, std::memory_order_release);
  if (prober.joinable()) prober.join();
  ::close(listen_fd);
  return 0;
}
