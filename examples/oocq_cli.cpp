// Command-line front end for the library: load a schema file, then
// minimize queries or decide containment/equivalence.
//
//   oocq_cli SCHEMA.oocq minimize '<query>'
//   oocq_cli SCHEMA.oocq contain  '<query1>' '<query2>'
//   oocq_cli SCHEMA.oocq equiv    '<query1>' '<query2>'
//   oocq_cli SCHEMA.oocq satisfiable '<terminal query>'
//   oocq_cli SCHEMA.oocq eval STATE.oocq '<query>'   (answers on a state)
//   oocq_cli SCHEMA.oocq explain '<terminal q1>' '<terminal q2>'
//
// Example:
//   oocq_cli rental.oocq minimize
//       '{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }'

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/containment.h"
#include "core/explain.h"
#include "core/optimizer.h"
#include "core/satisfiability.h"
#include "parser/parser.h"
#include "parser/state_parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"

namespace {

using namespace oocq;

int Usage() {
  std::fprintf(stderr,
               "usage: oocq_cli SCHEMA (minimize Q | contain Q1 Q2 | "
               "equiv Q1 Q2 | satisfiable Q | eval STATE Q | "
               "explain Q1 Q2)\n");
  return 2;
}

std::string ReadFileOrDie(const char* path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open file '%s'\n", path);
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

template <typename T>
T Must(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(value);
}

int RunMinimize(const Schema& schema, const std::string& text) {
  QueryOptimizer optimizer(schema);
  OptimizeReport report = Must(optimizer.OptimizeText(text));
  std::printf("%s", report.Summary(schema).c_str());
  return 0;
}

int RunContain(const Schema& schema, const std::string& q1,
               const std::string& q2, bool both_directions) {
  QueryOptimizer optimizer(schema);
  ConjunctiveQuery a = Must(ParseQuery(schema, q1));
  ConjunctiveQuery b = Must(ParseQuery(schema, q2));
  if (both_directions) {
    bool equivalent = Must(optimizer.IsEquivalent(a, b));
    std::printf("%s\n", equivalent ? "EQUIVALENT" : "NOT equivalent");
    return equivalent ? 0 : 1;
  }
  bool contained = Must(optimizer.IsContained(a, b));
  std::printf("%s\n", contained ? "CONTAINED (Q1 <= Q2)" : "NOT contained");
  return contained ? 0 : 1;
}

int RunSatisfiable(const Schema& schema, const std::string& text) {
  ConjunctiveQuery query = Must(ParseQuery(schema, text));
  StatusOr<ConjunctiveQuery> well_formed = NormalizeToWellFormed(schema, query);
  if (!well_formed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 well_formed.status().ToString().c_str());
    return 1;
  }
  if (!well_formed->IsTerminal(schema)) {
    std::fprintf(stderr,
                 "error: 'satisfiable' requires a terminal query; use "
                 "'minimize' to expand first\n");
    return 2;
  }
  SatisfiabilityResult result = CheckSatisfiable(schema, *well_formed);
  if (result.satisfiable) {
    std::printf("SATISFIABLE\n");
    return 0;
  }
  std::printf("UNSATISFIABLE: %s\n", result.reason.c_str());
  return 1;
}

int RunEval(const Schema& schema, const char* state_path,
            const std::string& text) {
  State database = Must(ParseState(&schema, ReadFileOrDie(state_path)));
  ConjunctiveQuery query = Must(ParseQuery(schema, text));
  StatusOr<ConjunctiveQuery> well_formed = NormalizeToWellFormed(schema, query);
  if (!well_formed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 well_formed.status().ToString().c_str());
    return 1;
  }
  EvalStats stats;
  std::vector<Oid> answers = Must(Evaluate(database, *well_formed, {}, &stats));
  std::printf("%zu answer(s):\n", answers.size());
  for (Oid oid : answers) {
    std::printf("  %s\n", database.DebugString(oid).c_str());
  }
  std::printf("(%llu candidate objects, %llu assignments tried)\n",
              static_cast<unsigned long long>(stats.candidate_pool),
              static_cast<unsigned long long>(stats.assignments_tried));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();

  Schema schema = Must(ParseSchema(ReadFileOrDie(argv[1])));

  std::string command = argv[2];
  if (command == "minimize" && argc == 4) {
    return RunMinimize(schema, argv[3]);
  }
  if (command == "contain" && argc == 5) {
    return RunContain(schema, argv[3], argv[4], /*both_directions=*/false);
  }
  if (command == "equiv" && argc == 5) {
    return RunContain(schema, argv[3], argv[4], /*both_directions=*/true);
  }
  if (command == "satisfiable" && argc == 4) {
    return RunSatisfiable(schema, argv[3]);
  }
  if (command == "eval" && argc == 5) {
    return RunEval(schema, argv[3], argv[4]);
  }
  if (command == "explain" && argc == 5) {
    ConjunctiveQuery q1 = Must(ParseQuery(schema, argv[3]));
    ConjunctiveQuery q2 = Must(ParseQuery(schema, argv[4]));
    ContainmentExplanation explanation =
        Must(ExplainContainment(schema, q1, q2));
    std::printf("%s", explanation.text.c_str());
    return explanation.contained ? 0 : 1;
  }
  return Usage();
}
