// Command-line front end for the library: load a schema file, then
// minimize queries or decide containment/equivalence.
//
//   oocq_cli [--trace=FILE] [--metrics] SCHEMA.oocq minimize '<query>'
//   oocq_cli SCHEMA.oocq contain  '<query1>' '<query2>'
//   oocq_cli SCHEMA.oocq equiv    '<query1>' '<query2>'
//   oocq_cli SCHEMA.oocq satisfiable '<terminal query>'
//   oocq_cli SCHEMA.oocq eval STATE.oocq '<query>'   (answers on a state)
//   oocq_cli SCHEMA.oocq explain '<terminal q1>' '<terminal q2>'
//
// Observability flags (must precede SCHEMA):
//   --trace=FILE   record the command's engine spans and write a Chrome
//                  tracing JSON to FILE (load in chrome://tracing or
//                  https://ui.perfetto.dev); implies --metrics
//   --metrics      collect engine metrics; Summary() gains the per-phase
//                  table and the full registry is printed as JSON
//
// Example:
//   oocq_cli rental.oocq minimize
//       '{ x | exists y (x in Vehicle & y in Discount & x in y.VehRented) }'

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/containment.h"
#include "flag_util.h"
#include "core/explain.h"
#include "core/optimizer.h"
#include "core/satisfiability.h"
#include "parser/parser.h"
#include "parser/state_parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace {

using namespace oocq;

/// The flag registry doubles as the usage text; main() binds the same
/// instance, so Dispatch's arity errors print identical help.
examples::FlagSet MakeFlagSet(std::string* trace_path, bool* want_metrics,
                              uint64_t* num_threads, bool* no_compile) {
  examples::FlagSet flags(
      "oocq_cli",
      "SCHEMA (minimize Q | contain Q1 Q2 | equiv Q1 Q2 | satisfiable Q | "
      "eval STATE Q | explain Q1 Q2)",
      "");
  flags.Str("trace", trace_path, "FILE",
            "write a Chrome trace of the run to FILE (implies --metrics)");
  flags.Bool("metrics", want_metrics,
             "print the engine metrics registry as JSON");
  flags.Uint("threads", num_threads, "N",
             "engine worker threads (1 = serial, 0 = one per hardware "
             "thread)");
  flags.Bool("no-compile", no_compile,
             "disable the query-compilation fast paths (bytecode VM + "
             "compiled subset scan; docs/compilation.md) for A/B runs");
  return flags;
}

int Usage() {
  std::string trace_path;
  bool want_metrics = false;
  uint64_t num_threads = 1;
  bool no_compile = false;
  return MakeFlagSet(&trace_path, &want_metrics, &num_threads, &no_compile)
      .UsageError();
}

std::string ReadFileOrDie(const char* path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "error: cannot open file '%s'\n", path);
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

template <typename T>
T Must(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(value);
}

int RunMinimize(const Schema& schema, const MinimizationOptions& options,
                const std::string& text) {
  QueryOptimizer optimizer(schema, options);
  OptimizeReport report = Must(optimizer.OptimizeText(text));
  std::printf("%s", report.Summary(schema).c_str());
  return 0;
}

int RunContain(const Schema& schema, const MinimizationOptions& options,
               const std::string& q1, const std::string& q2,
               bool both_directions) {
  QueryOptimizer optimizer(schema, options);
  ConjunctiveQuery a = Must(ParseQuery(schema, q1));
  ConjunctiveQuery b = Must(ParseQuery(schema, q2));
  if (both_directions) {
    bool equivalent = Must(optimizer.IsEquivalent(a, b));
    std::printf("%s\n", equivalent ? "EQUIVALENT" : "NOT equivalent");
    return equivalent ? 0 : 1;
  }
  bool contained = Must(optimizer.IsContained(a, b));
  std::printf("%s\n", contained ? "CONTAINED (Q1 <= Q2)" : "NOT contained");
  return contained ? 0 : 1;
}

int RunSatisfiable(const Schema& schema, const std::string& text) {
  ConjunctiveQuery query = Must(ParseQuery(schema, text));
  StatusOr<ConjunctiveQuery> well_formed = NormalizeToWellFormed(schema, query);
  if (!well_formed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 well_formed.status().ToString().c_str());
    return 1;
  }
  if (!well_formed->IsTerminal(schema)) {
    std::fprintf(stderr,
                 "error: 'satisfiable' requires a terminal query; use "
                 "'minimize' to expand first\n");
    return 2;
  }
  SatisfiabilityResult result = CheckSatisfiable(schema, *well_formed);
  if (result.satisfiable) {
    std::printf("SATISFIABLE\n");
    return 0;
  }
  std::printf("UNSATISFIABLE: %s\n", result.reason.c_str());
  return 1;
}

int RunEval(const Schema& schema, const MinimizationOptions& options,
            const char* state_path, const std::string& text) {
  State database = Must(ParseState(&schema, ReadFileOrDie(state_path)));
  ConjunctiveQuery query = Must(ParseQuery(schema, text));
  StatusOr<ConjunctiveQuery> well_formed = NormalizeToWellFormed(schema, query);
  if (!well_formed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 well_formed.status().ToString().c_str());
    return 1;
  }
  // The search-space counters describe tree-walker work, so the stats
  // sink only rides along on the interpreted path; the default compiled
  // run (docs/compilation.md) prints the answers alone.
  EvalOptions eval_options;
  eval_options.enable_compilation = options.enable_compilation;
  EvalStats stats;
  std::vector<Oid> answers =
      eval_options.enable_compilation
          ? Must(Evaluate(database, *well_formed, eval_options))
          : Must(Evaluate(database, *well_formed, eval_options, &stats));
  std::printf("%zu answer(s):\n", answers.size());
  for (Oid oid : answers) {
    std::printf("  %s\n", database.DebugString(oid).c_str());
  }
  if (eval_options.enable_compilation) {
    std::printf("(compiled; rerun with --no-compile for search-space "
                "counters)\n");
  } else {
    std::printf("(%llu candidate objects, %llu assignments tried)\n",
                static_cast<unsigned long long>(stats.candidate_pool),
                static_cast<unsigned long long>(stats.assignments_tried));
  }
  return 0;
}

int Dispatch(const Schema& schema, const MinimizationOptions& options,
             int argc, char** argv) {
  std::string command = argv[0];
  if (command == "minimize" && argc == 2) {
    return RunMinimize(schema, options, argv[1]);
  }
  if (command == "contain" && argc == 3) {
    return RunContain(schema, options, argv[1], argv[2],
                      /*both_directions=*/false);
  }
  if (command == "equiv" && argc == 3) {
    return RunContain(schema, options, argv[1], argv[2],
                      /*both_directions=*/true);
  }
  if (command == "satisfiable" && argc == 2) {
    return RunSatisfiable(schema, argv[1]);
  }
  if (command == "eval" && argc == 3) {
    return RunEval(schema, options, argv[1], argv[2]);
  }
  if (command == "explain" && argc == 3) {
    ConjunctiveQuery q1 = Must(ParseQuery(schema, argv[1]));
    ConjunctiveQuery q2 = Must(ParseQuery(schema, argv[2]));
    ContainmentExplanation explanation =
        Must(ExplainContainment(schema, q1, q2));
    std::printf("%s", explanation.text.c_str());
    return explanation.contained ? 0 : 1;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  bool want_metrics = false;
  uint64_t num_threads = 1;
  bool no_compile = false;
  examples::FlagSet flags =
      MakeFlagSet(&trace_path, &want_metrics, &num_threads, &no_compile);
  int arg = flags.Parse(argc, argv);
  if (argc - arg < 3) return Usage();

  Schema schema = Must(ParseSchema(ReadFileOrDie(argv[arg])));

  // Tracing implies metrics: the trace and the phase table describe the
  // same run. Both sinks wrap the whole command, so every engine call the
  // command makes lands in one log/registry.
  const bool observing = want_metrics || !trace_path.empty();
  MinimizationOptions options;
  options.observability.metrics = observing;
  options.parallel.num_threads = static_cast<uint32_t>(num_threads);
  options.enable_compilation = !no_compile;

  TraceLog trace_log;
  MetricsRegistry registry;
  std::optional<TraceSession> trace_session;
  std::optional<MetricsScope> metrics_scope;
  if (!trace_path.empty()) trace_session.emplace(&trace_log);
  if (observing) metrics_scope.emplace(&registry);

  int rc = Dispatch(schema, options, argc - arg - 1, argv + arg + 1);

  metrics_scope.reset();
  trace_session.reset();  // finalizes the log
  if (!trace_path.empty()) {
    Status written = trace_log.WriteChromeTrace(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: wrote %zu span(s) to %s\n",
                 trace_log.events().size(), trace_path.c_str());
  }
  if (want_metrics) {
    std::printf("%s\n", registry.JsonString().c_str());
  }
  return rc;
}
