// A bibliographic database: demonstrates path expressions (the §2.2
// sugar), the state DSL, explanation output, and query evaluation — the
// workflow of a user exploring a populated OODB.
//
//   $ ./bibliography

#include <cstdio>

#include "core/explain.h"
#include "core/optimizer.h"
#include "parser/parser.h"
#include "parser/state_parser.h"
#include "query/printer.h"
#include "query/well_formed.h"
#include "state/evaluation.h"

namespace {

using namespace oocq;

template <typename T>
T Must(StatusOr<T> value) {
  if (!value.ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(value);
}

}  // namespace

int main() {
  Schema schema = Must(ParseSchema(R"(
schema Bibliography {
  class Person      { Name: String; Advisor: Person; }
  class Publication { Title: String; Authors: {Person}; Venue: Venue; }
  class Article     under Publication { Pages: Int; }
  class Preprint    under Publication { }
  class Venue       { VenueName: String; Chair: Person; }
})"));

  State db = Must(ParseState(&schema, R"(
state {
  chan:   Person { Name = "Chan"; }
  merlin: Person { Name = "Merlin"; Advisor = chandra; }
  chandra: Person { Name = "Chandra"; }
  pods:   Venue  { VenueName = "PODS"; Chair = chandra; }
  stoc:   Venue  { VenueName = "STOC"; Chair = chan; }
  p1: Article  { Title = "CQ containment in OODBs"; Authors = { chan };
                 Venue = pods; Pages = 11; }
  p2: Article  { Title = "Optimal implementation of CQs";
                 Authors = { chandra, merlin }; Venue = stoc; Pages = 13; }
  p3: Preprint { Title = "Unpublished notes"; Authors = { merlin };
                 Venue = pods; }
})"));
  std::printf("loaded %zu objects\n\n", db.num_objects());

  // Path expression: authors of publications whose venue is chaired by
  // their own advisor (x.Advisor reached through a 2-level path on p).
  const char* nepotism =
      "{ x | exists p (x in Person & p in Publication & x in p.Authors & "
      "x.Advisor = p.Venue.Chair) }";
  ConjunctiveQuery query =
      Must(NormalizeToWellFormed(schema, Must(ParseQuery(schema, nepotism))));
  std::printf("query: %s\n", nepotism);
  std::vector<Oid> answers = Must(Evaluate(db, query));
  std::printf("%zu answer(s):\n", answers.size());
  for (Oid oid : answers) {
    const Value* name = db.GetAttribute(oid, "Name");
    std::printf("  %s\n", db.DebugString(name->ref()).c_str());
  }

  // Optimize a hierarchy query: "publications with page counts" can only
  // be articles (Preprint has no Pages attribute).
  QueryOptimizer optimizer(schema);
  OptimizeReport report = Must(optimizer.OptimizeText(
      "{ p | exists n (p in Publication & n in Int & n = p.Pages) }"));
  std::printf("\npaged publications optimize to:\n  %s\n",
              UnionQueryToString(schema, report.optimized).c_str());

  // Explain a non-containment.
  ContainmentExplanation explanation = Must(ExplainContainment(
      schema,
      Must(ParseQuery(schema, "{ p | exists a (p in Article & a in Person "
                              "& a in p.Authors) }")),
      Must(ParseQuery(schema,
                      "{ p | exists a exists b (p in Article & a in Person "
                      "& b in Person & a in p.Authors & b in p.Authors & "
                      "a != b) }"))));
  std::printf("\nis every authored article multi-authored?\n%s",
              explanation.text.c_str());
  return 0;
}
