#ifndef OOCQ_EXAMPLES_FLAG_UTIL_H_
#define OOCQ_EXAMPLES_FLAG_UTIL_H_

// Shared --flag parsing for the example binaries (oocq_serve,
// oocq_client, oocq_cli), replacing three hand-rolled parsers with one
// convention:
//
//   * flags are --name=VALUE (or bare --name for booleans) and precede
//     any positional arguments;
//   * --help prints the generated usage text and exits 0;
//   * an unknown --flag prints an error plus the usage text and exits 2
//     (the same exit code callers should use for bad positionals, via
//     UsageError()).
//
// Usage:
//
//   FlagSet flags("oocq_serve", "", "Line protocol on the socket; ...");
//   uint64_t port = 7733;
//   flags.Uint("port", &port, "N", "listen port (default 7733)");
//   int first_positional = flags.Parse(argc, argv);

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace oocq::examples {

class FlagSet {
 public:
  /// `positionals` is the usage-line suffix after the flags (e.g.
  /// "SCHEMA (minimize Q | ...)"); `trailer` is free-form text printed
  /// after the flag list. Either may be "".
  FlagSet(std::string program, std::string positionals, std::string trailer)
      : program_(std::move(program)),
        positionals_(std::move(positionals)),
        trailer_(std::move(trailer)) {}

  /// Registers --name=<placeholder> parsed with strtoull (base 10).
  void Uint(const char* name, uint64_t* target, const char* placeholder,
            const char* help) {
    flags_.push_back({name, placeholder, help, target, nullptr, nullptr});
  }

  /// Registers --name=<placeholder> captured verbatim.
  void Str(const char* name, std::string* target, const char* placeholder,
           const char* help) {
    flags_.push_back({name, placeholder, help, nullptr, target, nullptr});
  }

  /// Registers bare --name setting *target to true.
  void Bool(const char* name, bool* target, const char* help) {
    flags_.push_back({name, "", help, nullptr, nullptr, target});
  }

  /// Parses flags from argv until the first non---prefixed argument and
  /// returns its index (== argc when everything was a flag). --help
  /// exits 0; an unknown or malformed flag exits 2.
  int Parse(int argc, char** argv) {
    int arg = 1;
    for (; arg < argc; ++arg) {
      std::string flag = argv[arg];
      if (flag.rfind("--", 0) != 0) break;
      if (flag == "--help") {
        PrintUsage();
        std::exit(0);
      }
      if (!Apply(flag)) {
        std::fprintf(stderr, "error: unknown flag '%s'\n", flag.c_str());
        PrintUsage();
        std::exit(2);
      }
    }
    return arg;
  }

  /// For callers rejecting bad positionals or flag values with the same
  /// convention: prints the usage text and returns exit code 2.
  int UsageError() {
    PrintUsage();
    return 2;
  }

 private:
  struct Flag {
    std::string name;
    std::string placeholder;  // "" for booleans
    std::string help;
    uint64_t* uint_target;
    std::string* str_target;
    bool* bool_target;
  };

  bool Apply(const std::string& flag) {
    for (const Flag& f : flags_) {
      if (f.bool_target != nullptr) {
        if (flag == "--" + f.name) {
          *f.bool_target = true;
          return true;
        }
        continue;
      }
      std::string prefix = "--" + f.name + "=";
      if (flag.rfind(prefix, 0) != 0) continue;
      std::string value = flag.substr(prefix.size());
      if (f.str_target != nullptr) {
        *f.str_target = value;
      } else {
        *f.uint_target = std::strtoull(value.c_str(), nullptr, 10);
      }
      return true;
    }
    return false;
  }

  void PrintUsage() const {
    std::string line = "usage: " + program_;
    for (const Flag& f : flags_) {
      line += " [--" + f.name;
      if (!f.placeholder.empty()) line += "=" + f.placeholder;
      line += "]";
    }
    line += " [--help]";
    if (!positionals_.empty()) line += " " + positionals_;
    std::fprintf(stderr, "%s\n", line.c_str());
    for (const Flag& f : flags_) {
      std::string head = "--" + f.name;
      if (!f.placeholder.empty()) head += "=" + f.placeholder;
      std::fprintf(stderr, "  %-18s %s\n", head.c_str(), f.help.c_str());
    }
    std::fprintf(stderr, "  %-18s %s\n", "--help", "this message");
    if (!trailer_.empty()) std::fprintf(stderr, "%s\n", trailer_.c_str());
  }

  std::string program_;
  std::string positionals_;
  std::string trailer_;
  std::vector<Flag> flags_;
};

}  // namespace oocq::examples

#endif  // OOCQ_EXAMPLES_FLAG_UTIL_H_
